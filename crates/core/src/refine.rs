//! The `Refine` procedure (§5): counterexample analysis.
//!
//! Given an abstract error trace from `ReachAndBuild`, Refine
//!
//! 1. **concretizes** it: each abstract context move is replayed
//!    through the state-level transitions of the ARG whose quotient
//!    the current ACFA is, yielding per-thread CFA edge sequences
//!    split into a silent prefix, one observable (global-writing)
//!    edge, and a silent suffix; if the abstract trace used more
//!    simultaneous context threads than concrete instances can
//!    witness, the counter parameter `k` must grow;
//! 2. searches a small space of **placements** — silent prefixes may
//!    float earlier in the schedule (silent moves write no global, so
//!    the abstraction cannot order them; feasibility may depend on
//!    reading a global *before* another thread's write, the classic
//!    read-read-set-set race of the test-and-set idiom);
//! 3. builds each candidate's **trace formula** (SSA-renamed
//!    strongest-post constraints; globals share one timeline, locals
//!    are per-thread) and checks it with the decision procedure;
//! 4. a satisfiable candidate is a **real** race: the schedule is
//!    validated end-to-end by replaying it on the concrete
//!    interpreter;
//! 5. if every candidate is infeasible, **new predicates are mined**:
//!    for every cut point the unsat-core prefix is existentially
//!    projected onto the variables it shares with the suffix (trace
//!    formulas here are conjunctive, so projection yields the
//!    strongest interpolant à la *Abstractions from Proofs*), and the
//!    resulting atoms are mapped back to program predicates.

use crate::arg::{Arg, ExportedArg, StateEdge, StateEdgeKind, ThreadState};
use crate::preds::PredSet;
use crate::reach::{AbstractCex, AbstractError, AbstractRace, Property, TraceOp};
use circ_acfa::{Acfa, AcfaLocId, CollapseResult};
use circ_governor::{Budget, Exhausted};
use circ_ir::{
    BinOp, Cfa, CmpOp, EdgeId, Expr, Interp, MtProgram, Op, Pred, SchedChoice, ThreadId, Var,
};
use circ_smt::{lia, translate, Atom, Formula, LinExpr, Rel, SVar, SatResult, Solver};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A concrete interleaved error trace.
#[derive(Debug, Clone)]
pub struct ConcreteCex {
    /// Total number of threads (main is thread 0).
    pub n_threads: usize,
    /// `(thread, CFA edge, nondet value)` in schedule order.
    pub steps: Vec<(usize, EdgeId, i64)>,
    /// Whether replaying the schedule on the concrete interpreter
    /// ends in a race state.
    pub replay_ok: bool,
}

/// The verdict of `Refine` on one abstract counterexample.
#[derive(Debug, Clone)]
pub enum RefineOutcome {
    /// The trace is realizable: a genuine race.
    Real(ConcreteCex),
    /// Spurious; these predicates rule it out.
    NewPreds(Vec<Pred>),
    /// Spurious because the counter abstraction lost thread
    /// identities: increment `k`.
    IncrementK,
    /// No progress possible (diagnostic for the caller).
    Stuck(String),
    /// Refinement itself failed: the trace formula could not be
    /// built. Propagated to the CIRC driver, which reports the run as
    /// inconclusive instead of panicking.
    Error(RefineError),
    /// The run's resource budget ran out mid-search; the placement
    /// sweep was abandoned without a verdict on the trace.
    Exhausted(Exhausted),
}

/// A failure inside `Refine` (as opposed to a verdict about the
/// trace). The CIRC driver surfaces these as
/// [`crate::UnknownReason::RefineFailed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefineError {
    /// An `assume` guard fell outside the linear deterministic
    /// fragment the trace-formula encoding handles, so the trace's
    /// feasibility cannot be decided.
    NonLinearGuard {
        /// The CFA edge carrying the guard.
        edge: EdgeId,
        /// What the translator rejected.
        reason: String,
    },
}

impl std::fmt::Display for RefineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefineError::NonLinearGuard { edge, reason } => {
                write!(f, "cannot encode assume guard on edge {edge:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for RefineError {}

/// A record of what `Refine` did, kept for reporting (the Figure 5
/// artifacts: concrete interleaving, trace formula, mined
/// predicates).
#[derive(Debug, Clone, Default)]
pub struct RefineDetail {
    /// The concrete interleaving `(thread, CFA edge)` (main = 0), in
    /// the default placement.
    pub interleaving: Vec<(usize, EdgeId)>,
    /// The clauses of the trace formula, rendered.
    pub trace_formula: Vec<String>,
    /// Predicates mined from the infeasibility proof (empty when the
    /// trace was feasible).
    pub mined_preds: Vec<Pred>,
}

/// One concretized context step: silent CFA edges, then at most one
/// global-writing edge, then silent edges.
#[derive(Debug, Clone)]
struct CtxExpansion {
    prefix: Vec<EdgeId>,
    observable: Option<EdgeId>,
    suffix: Vec<EdgeId>,
    end: ThreadState,
}

/// Replays abstract context moves through the ARG underlying the
/// current context ACFA.
#[derive(Debug)]
pub struct Concretizer {
    /// Main-op transitions of the previous ARG, grouped by source.
    moves: HashMap<ThreadState, Vec<(EdgeId, ThreadState)>>,
    /// Composed class map: thread state → location of the current
    /// ACFA (export map ∘ collapse map).
    class: HashMap<ThreadState, AcfaLocId>,
    entry: ThreadState,
}

impl Concretizer {
    /// Builds a concretizer from the previous iteration's ARG (its
    /// raw state edges), its export, and the collapse that produced
    /// the current context ACFA.
    pub fn new(arg: &Arg, exported: &ExportedArg, collapsed: &CollapseResult) -> Concretizer {
        let mut moves: HashMap<ThreadState, Vec<(EdgeId, ThreadState)>> = HashMap::new();
        for StateEdge { src, kind, dst } in arg.state_edges() {
            if let StateEdgeKind::MainOp(eid) = kind {
                moves.entry(src.clone()).or_default().push((*eid, dst.clone()));
            }
        }
        let class = exported
            .state_loc
            .iter()
            .map(|(s, loc)| (s.clone(), collapsed.map[loc.index()]))
            .collect();
        let entry = arg.entry_state().expect("ARG entry set by ReachAndBuild").clone();
        Concretizer { moves, class, entry }
    }

    fn class_of(&self, s: &ThreadState) -> Option<AcfaLocId> {
        self.class.get(s).copied()
    }

    /// Finds a CFA-edge path realizing one abstract step
    /// `class(cur) -Y→ dst_class`: silent moves (no global write),
    /// then — if `Y` is nonempty — one edge writing a global subset of
    /// `Y`, then silent moves, ending in `dst_class`.
    fn concretize_step(
        &self,
        cfa: &Cfa,
        cur: &ThreadState,
        havoc: &BTreeSet<Var>,
        dst_class: AcfaLocId,
    ) -> Option<CtxExpansion> {
        type Node = (ThreadState, bool);
        let start: Node = (cur.clone(), havoc.is_empty());
        let mut prev: HashMap<Node, (Node, EdgeId)> = HashMap::new();
        let mut queue: VecDeque<Node> = VecDeque::new();
        queue.push_back(start.clone());
        let mut goal: Option<Node> = None;
        let mut fallback_goal: Option<Node> = None;
        let is_goal = |n: &Node| n.1 && n.0 != *cur && self.class_of(&n.0) == Some(dst_class);
        let mut seen: BTreeSet<Node> = [start.clone()].into();
        while let Some(node) = queue.pop_front() {
            if is_goal(&node) {
                if !cfa.is_atomic(node.0 .0) {
                    goal = Some(node);
                    break;
                }
                if fallback_goal.is_none() {
                    fallback_goal = Some(node.clone());
                }
            }
            let Some(succs) = self.moves.get(&node.0) else { continue };
            for (eid, next) in succs {
                let op = &cfa.edge(*eid).op;
                let gwrite: Option<Var> = op.written().filter(|v| cfa.is_global(*v));
                let next_node: Option<Node> = match gwrite {
                    None => Some((next.clone(), node.1)),
                    Some(v) => {
                        if !node.1 && havoc.contains(&v) {
                            Some((next.clone(), true))
                        } else {
                            None
                        }
                    }
                };
                if let Some(nn) = next_node {
                    if seen.insert(nn.clone()) {
                        prev.insert(nn.clone(), (node.clone(), *eid));
                        queue.push_back(nn);
                    }
                }
            }
        }
        let end = goal.or(fallback_goal)?;
        let mut rev: Vec<EdgeId> = Vec::new();
        let mut at = end.clone();
        while at != start {
            let (p, eid) = prev.get(&at)?.clone();
            rev.push(eid);
            at = p;
        }
        rev.reverse();
        // Split at the observable (the unique global-writing edge).
        let mut prefix = Vec::new();
        let mut observable = None;
        let mut suffix = Vec::new();
        for eid in rev {
            let op = &cfa.edge(eid).op;
            let is_obs = op.written().is_some_and(|v| cfa.is_global(v));
            if is_obs {
                debug_assert!(observable.is_none());
                observable = Some(eid);
            } else if observable.is_none() {
                prefix.push(eid);
            } else {
                suffix.push(eid);
            }
        }
        Some(CtxExpansion { prefix, observable, suffix, end: end.0 })
    }

    /// Extends a thread by silent moves (staying within its current
    /// class) until it sits at a CFA location with an enabled access
    /// to `var` (write if `need_write`). Used to park the racing
    /// threads at the conflicting locations.
    fn drive_to_access(
        &self,
        cfa: &Cfa,
        cur: &ThreadState,
        class: AcfaLocId,
        var: Var,
        need_write: bool,
    ) -> Option<(Vec<EdgeId>, ThreadState)> {
        let at_access = |s: &ThreadState| {
            if need_write {
                cfa.writes_at(s.0).contains(&var)
            } else {
                cfa.writes_at(s.0).contains(&var) || cfa.reads_at(s.0).contains(&var)
            }
        };
        let mut prev: HashMap<ThreadState, (ThreadState, EdgeId)> = HashMap::new();
        let mut queue: VecDeque<ThreadState> = VecDeque::new();
        let mut seen: BTreeSet<ThreadState> = [cur.clone()].into();
        queue.push_back(cur.clone());
        let mut goal: Option<ThreadState> = None;
        while let Some(s) = queue.pop_front() {
            if at_access(&s) && !cfa.is_atomic(s.0) {
                goal = Some(s);
                break;
            }
            let Some(succs) = self.moves.get(&s) else { continue };
            for (eid, next) in succs {
                let silent = cfa.edge(*eid).op.written().is_none_or(|v| !cfa.is_global(v));
                if !silent || self.class_of(next) != Some(class) {
                    continue;
                }
                if seen.insert(next.clone()) {
                    prev.insert(next.clone(), (s.clone(), *eid));
                    queue.push_back(next.clone());
                }
            }
        }
        let end = goal?;
        let mut rev = Vec::new();
        let mut at = end.clone();
        while at != *cur {
            let (p, eid) = prev.get(&at)?.clone();
            rev.push(eid);
            at = p;
        }
        rev.reverse();
        Some((rev, end))
    }
}

/// One schedule segment: a run of edges by one thread. `anchor` is
/// the earliest segment index a floating (silent-prefix) segment may
/// move to.
#[derive(Debug, Clone)]
struct Segment {
    tag: usize,
    ops: Vec<EdgeId>,
    /// `Some(anchor)` marks a silent context prefix that may float up
    /// to just after segment `anchor` (or to the very start for
    /// `None`-anchored… encoded as anchor = usize::MAX meaning start).
    float_anchor: Option<usize>,
}

/// Analyzes one abstract counterexample. `concretizer` is the replay
/// structure for the current context ACFA (`None` only when the
/// context is empty, i.e. the trace cannot contain context moves).
///
/// The resource budget is polled once per placement candidate (the
/// sweep is up to `2^6` trace formulas, each an SMT query) and handed
/// to every placement's solver, so a deadline cuts through even a
/// single slow query's theory loop.
pub fn refine(
    program: &MtProgram,
    acfa: &Acfa,
    cex: &AbstractCex,
    concretizer: Option<&Concretizer>,
    preds: &PredSet,
    property: Property,
    budget: &Budget,
) -> (RefineOutcome, RefineDetail) {
    let mut detail = RefineDetail::default();
    let cfa = program.cfa();

    // ---- 1. Concretize into segments --------------------------------
    let mut segments: Vec<Segment> = Vec::new();
    let mut ctx_threads: Vec<ThreadState> = Vec::new();
    // last segment index per thread tag (for float anchors)
    let mut last_seg: HashMap<usize, usize> = HashMap::new();
    for (_state, op) in &cex.steps {
        match op {
            TraceOp::Main(eid) => {
                let ix = segments.len();
                segments.push(Segment { tag: 0, ops: vec![*eid], float_anchor: None });
                last_seg.insert(0, ix);
            }
            TraceOp::Ctx { src, edge_ix } => {
                let Some(conc) = concretizer else {
                    return (
                        RefineOutcome::Stuck(
                            "context move without a concretizer (empty context)".into(),
                        ),
                        detail,
                    );
                };
                let edge = &acfa.edges()[*edge_ix];
                let mut candidates: Vec<usize> = ctx_threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| conc.class_of(s) == Some(*src))
                    .map(|(i, _)| i)
                    .collect();
                if *src == acfa.entry() {
                    candidates.push(usize::MAX); // sentinel: spawn fresh
                }
                let mut done = false;
                for cand in candidates {
                    let (tix, cur) = if cand == usize::MAX {
                        ctx_threads.push(conc.entry.clone());
                        (ctx_threads.len() - 1, conc.entry.clone())
                    } else {
                        (cand, ctx_threads[cand].clone())
                    };
                    if let Some(exp) = conc.concretize_step(cfa, &cur, &edge.havoc, edge.dst) {
                        let tag = tix + 1;
                        let anchor = last_seg.get(&tag).copied();
                        // A floated prefix parks its thread until the
                        // observable runs, so it may only float up to
                        // a NON-atomic location — a thread waiting
                        // inside an atomic section would block every
                        // other thread (and the replay).
                        let mut float_len = 0;
                        for (i, eid) in exp.prefix.iter().enumerate() {
                            if !cfa.is_atomic(cfa.edge(*eid).dst) {
                                float_len = i + 1;
                            }
                        }
                        let (floatable, rest) = exp.prefix.split_at(float_len);
                        if !floatable.is_empty() {
                            let ix = segments.len();
                            segments.push(Segment {
                                tag,
                                ops: floatable.to_vec(),
                                float_anchor: Some(anchor.unwrap_or(usize::MAX)),
                            });
                            last_seg.insert(tag, ix);
                        }
                        let mut tail: Vec<EdgeId> = rest.to_vec();
                        tail.extend(exp.observable);
                        tail.extend(exp.suffix.iter().copied());
                        if !tail.is_empty() {
                            let ix = segments.len();
                            segments.push(Segment { tag, ops: tail, float_anchor: None });
                            last_seg.insert(tag, ix);
                        }
                        ctx_threads[tix] = exp.end;
                        done = true;
                        break;
                    } else if cand == usize::MAX {
                        ctx_threads.pop();
                    }
                }
                if !done {
                    // The counters admitted a move no concrete thread
                    // can witness (ω hides identities): grow k.
                    return (RefineOutcome::IncrementK, detail);
                }
            }
        }
    }

    // ---- 1b. Materialize & park the racing threads ------------------
    // (An assertion violation is the main thread's alone: nothing to
    // materialize.)
    let needed: Vec<(AcfaLocId, bool)> = match &cex.error {
        AbstractError::Assertion => Vec::new(),
        AbstractError::Race(AbstractRace::MainAndContext { ctx_loc, .. }) => {
            vec![(*ctx_loc, true)]
        }
        AbstractError::Race(AbstractRace::TwoContexts { first, second }) => {
            vec![(*first, true), (*second, true)]
        }
    };
    let mut reserved: Vec<bool> = vec![false; ctx_threads.len()];
    for (loc, need_write) in needed {
        let Some(conc) = concretizer else {
            return (RefineOutcome::Stuck("race against an empty context".into()), detail);
        };
        let mut placed = false;
        // try existing unreserved instances in that class first
        let candidate_ixs: Vec<usize> = (0..ctx_threads.len())
            .filter(|&i| !reserved[i] && conc.class_of(&ctx_threads[i]) == Some(loc))
            .collect();
        for i in candidate_ixs {
            if let Some((ops, end)) =
                conc.drive_to_access(cfa, &ctx_threads[i], loc, program.race_var(), need_write)
            {
                if !ops.is_empty() {
                    segments.push(Segment { tag: i + 1, ops, float_anchor: None });
                }
                ctx_threads[i] = end;
                reserved[i] = true;
                placed = true;
                break;
            }
        }
        if !placed && loc == acfa.entry() {
            // a fresh thread still at the entry class
            let cur = conc.entry.clone();
            if let Some((ops, end)) =
                conc.drive_to_access(cfa, &cur, loc, program.race_var(), need_write)
            {
                ctx_threads.push(end);
                reserved.push(true);
                if !ops.is_empty() {
                    segments.push(Segment { tag: ctx_threads.len(), ops, float_anchor: None });
                }
                placed = true;
            }
        }
        if !placed {
            return (RefineOutcome::IncrementK, detail);
        }
    }
    let n_threads = ctx_threads.len() + 1;

    // ---- 2./3. Placement search over trace formulas ------------------
    let float_ixs: Vec<usize> = segments
        .iter()
        .enumerate()
        .filter(|(_, s)| s.float_anchor.is_some())
        .map(|(i, _)| i)
        .collect();
    let n_choices = float_ixs.len().min(6); // cap the search at 2^6
    let mut infeasible_ssa: Option<SsaResult> = None;
    let mut feasible_unreplayable = false;

    for mask in 0..(1u32 << n_choices) {
        if let Err(e) = budget.check() {
            return (RefineOutcome::Exhausted(e), detail);
        }
        let order = place_segments(&segments, &float_ixs[..n_choices], mask);
        let mut interleaving: Vec<(usize, EdgeId)> = Vec::new();
        for &si in &order {
            let seg = &segments[si];
            for &e in &seg.ops {
                interleaving.push((seg.tag, e));
            }
        }
        let ssa = match build_trace_formula(cfa, &interleaving) {
            Ok(ssa) => ssa,
            Err(e) => return (RefineOutcome::Error(e), detail),
        };
        if mask == 0 {
            detail.interleaving = interleaving.clone();
            detail.trace_formula = ssa.clauses.iter().map(|c| format!("{c}")).collect();
        }
        let tf = Formula::conj(ssa.clauses.iter().cloned());
        let mut solver = Solver::new();
        solver.set_budget(budget.clone());
        match solver.check(&tf) {
            SatResult::Sat(model) => {
                let steps: Vec<(usize, EdgeId, i64)> = interleaving
                    .iter()
                    .enumerate()
                    .map(|(pos, (tag, eid))| {
                        let nd = ssa
                            .nondet_of_step
                            .get(&pos)
                            .and_then(|sv| model.get(sv).copied())
                            .unwrap_or(0);
                        (*tag, *eid, nd)
                    })
                    .collect();
                let replay_ok = replay(program, n_threads, &steps, property);
                if replay_ok {
                    let ccex = ConcreteCex { n_threads, steps, replay_ok };
                    return (RefineOutcome::Real(ccex), detail);
                }
                // Data-feasible but not schedulable (e.g. the formula
                // cannot see atomic sections): this placement proves
                // nothing either way — discard it.
                feasible_unreplayable = true;
            }
            SatResult::Unsat => {
                if infeasible_ssa.is_none() {
                    infeasible_ssa = Some(ssa);
                }
            }
            SatResult::Unknown => {
                // The solver could not decide this placement (e.g.
                // arithmetic overflow in the theory procedure). It
                // proves nothing either way: neither a realizable
                // race nor an infeasibility proof to mine from.
            }
        }
    }

    // ---- 4. No placement replayed: mine from an infeasible one -------
    let Some(ssa) = infeasible_ssa else {
        return (
            RefineOutcome::Stuck(format!(
                "every placement data-feasible but none replayable \
                 (feasible_unreplayable={feasible_unreplayable})"
            )),
            detail,
        );
    };
    let mined = mine_predicates(&ssa);
    detail.mined_preds = mined.clone();
    let fresh: Vec<Pred> = mined
        .into_iter()
        .filter(|p| {
            let canon = p.canonical();
            !preds.preds().contains(&canon)
        })
        .collect();
    if fresh.is_empty() {
        (RefineOutcome::Stuck("refinement produced no new predicates".into()), detail)
    } else {
        (RefineOutcome::NewPreds(fresh), detail)
    }
}

/// Realizes one placement choice: floating segments selected in
/// `mask` move up to just after their anchor segment.
fn place_segments(segments: &[Segment], float_ixs: &[usize], mask: u32) -> Vec<usize> {
    // Sort keys: twice the original index; an early-floated segment
    // gets its anchor's key plus 1 (anchor usize::MAX = the start).
    let mut keyed: Vec<(i64, usize)> = Vec::with_capacity(segments.len());
    for (i, seg) in segments.iter().enumerate() {
        let early =
            float_ixs.iter().position(|&f| f == i).is_some_and(|bit| mask & (1 << bit) != 0);
        let key = if early {
            match seg.float_anchor {
                Some(usize::MAX) | None => -1,
                Some(a) => a as i64 * 2 + 1,
            }
        } else {
            i as i64 * 2
        };
        keyed.push((key, i));
    }
    keyed.sort_by_key(|(k, i)| (*k, *i));
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Replays a schedule on the concrete interpreter and checks that it
/// ends in a state violating the property.
fn replay(
    program: &MtProgram,
    n_threads: usize,
    steps: &[(usize, EdgeId, i64)],
    property: Property,
) -> bool {
    let interp = Interp::new(program.clone(), n_threads);
    let mut s = interp.initial();
    for &(tag, eid, nd) in steps {
        let enabled = interp.enabled(&s);
        if !enabled.contains(&(ThreadId(tag as u32), eid)) {
            return false;
        }
        s = interp.step(&s, SchedChoice { thread: ThreadId(tag as u32), edge: eid, nondet: nd });
    }
    match property {
        Property::Race => interp.race(&s).is_some(),
        Property::Assertions => interp.assertion_violation(&s).is_some(),
    }
}

/// Scope of an SSA variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Scope {
    Global,
    Local(usize),
}

/// The SSA-encoded trace formula plus reverse-mapping metadata.
#[derive(Debug, Clone, Default)]
struct SsaResult {
    clauses: Vec<Formula>,
    /// Interleaving position of each clause.
    clause_pos: Vec<usize>,
    /// Solver var → (scope, program var).
    origin: HashMap<SVar, (Scope, Var)>,
    /// Fresh nondet var per interleaving position.
    nondet_of_step: HashMap<usize, SVar>,
}

/// SSA bookkeeping: globals share one timeline, locals one per
/// thread; reads before any write pin the initial value zero.
fn build_trace_formula(
    cfa: &Cfa,
    interleaving: &[(usize, EdgeId)],
) -> Result<SsaResult, RefineError> {
    let mut next: u32 = 0;
    let mut alloc = move || {
        let v = SVar(next);
        next += 1;
        v
    };
    let mut cur: HashMap<(Scope, Var), SVar> = HashMap::new();
    let mut out = SsaResult::default();

    for (pos, (tag, eid)) in interleaving.iter().enumerate() {
        let scope_of = |v: Var| {
            if cfa.is_global(v) {
                Scope::Global
            } else {
                Scope::Local(*tag)
            }
        };
        // Cut positions: each operation owns position `2·pos + 1`; an
        // initial-value clause materialized at that operation sits at
        // `2·pos`, strictly *before* it, so interpolation can separate
        // "the variable is still zero" from the constraint that
        // contradicts it.
        let init_pos = 2 * pos;
        let op_pos = 2 * pos + 1;
        // reading map: materialize instance 0 (= 0) on first read
        macro_rules! read_var {
            ($v:expr) => {{
                let key = (scope_of($v), $v);
                match cur.get(&key) {
                    Some(&sv) => sv,
                    None => {
                        let sv = alloc();
                        cur.insert(key, sv);
                        out.origin.insert(sv, key);
                        out.clauses.push(Formula::atom(Atom::eq(LinExpr::var(sv))));
                        out.clause_pos.push(init_pos);
                        sv
                    }
                }
            }};
        }
        match &cfa.edge(*eid).op {
            Op::Assume(b) => {
                let f = translate::formula_of_bool(b, &mut |v| read_var!(v)).map_err(|e| {
                    RefineError::NonLinearGuard { edge: *eid, reason: e.to_string() }
                })?;
                out.clauses.push(f);
                out.clause_pos.push(op_pos);
            }
            Op::Assign(x, e) => {
                let nd = if e.has_nondet() {
                    let sv = alloc();
                    out.nondet_of_step.insert(pos, sv);
                    Some(sv)
                } else {
                    None
                };
                let rhs = translate::lin_of_expr_nd(e, &mut |v| read_var!(v), nd).ok();
                let key = (scope_of(*x), *x);
                let sv = alloc();
                cur.insert(key, sv);
                out.origin.insert(sv, key);
                if let Some(rhs) = rhs {
                    out.clauses.push(Formula::atom(Atom::eq(LinExpr::var(sv) - rhs)));
                    out.clause_pos.push(op_pos);
                }
            }
        }
    }
    Ok(out)
}

/// Interpolant-style predicate mining: for each cut point, project the
/// prefix of the (core-restricted) conjunctive trace formula onto its
/// shared vocabulary with the suffix, then map atoms back to program
/// predicates.
fn mine_predicates(ssa: &SsaResult) -> Vec<Pred> {
    let mut atoms: Vec<(usize, Atom)> = Vec::new();
    let mut flat = true;
    for (f, &pos) in ssa.clauses.iter().zip(&ssa.clause_pos) {
        if !flatten_conj(f, pos, &mut atoms) {
            flat = false;
            break;
        }
    }
    let mut out: Vec<Pred> = Vec::new();
    if flat {
        let all: Vec<Atom> = atoms.iter().map(|(_, a)| a.clone()).collect();
        if lia::is_sat_conj(&all) {
            return out; // should not happen: caller found the TF unsat
        }
        let core_ix = lia::unsat_core(&all);
        let core: Vec<(usize, Atom)> = core_ix.iter().map(|&i| atoms[i].clone()).collect();
        let max_pos = core.iter().map(|(p, _)| *p).max().unwrap_or(0);
        for cut in 0..=max_pos {
            let prefix: Vec<Atom> =
                core.iter().filter(|(p, _)| *p <= cut).map(|(_, a)| a.clone()).collect();
            let suffix: Vec<Atom> =
                core.iter().filter(|(p, _)| *p > cut).map(|(_, a)| a.clone()).collect();
            if prefix.is_empty() || suffix.is_empty() {
                continue;
            }
            let prefix_vars: BTreeSet<SVar> =
                prefix.iter().flat_map(|a| a.vars().collect::<Vec<_>>()).collect();
            let suffix_vars: BTreeSet<SVar> =
                suffix.iter().flat_map(|a| a.vars().collect::<Vec<_>>()).collect();
            let elim: BTreeSet<SVar> = prefix_vars.difference(&suffix_vars).copied().collect();
            for atom in lia::project(&prefix, &elim) {
                if let Some(p) = pred_of_atom(ssa, &atom) {
                    push_unique(&mut out, p);
                }
            }
        }
    } else {
        // Fallback for disjunctive guards: harvest every atom.
        for f in &ssa.clauses {
            for atom in f.atoms() {
                if let Some(p) = pred_of_atom(ssa, &atom) {
                    push_unique(&mut out, p);
                }
            }
        }
    }
    out
}

fn push_unique(out: &mut Vec<Pred>, p: Pred) {
    let canon = p.canonical();
    if !out.contains(&canon) {
        out.push(canon);
    }
}

fn flatten_conj(f: &Formula, pos: usize, out: &mut Vec<(usize, Atom)>) -> bool {
    match f {
        Formula::Const(true) => true,
        Formula::Const(false) => {
            out.push((pos, Atom::falsum()));
            true
        }
        Formula::Atom(a) => {
            out.push((pos, a.clone()));
            true
        }
        Formula::Not(inner) => match &**inner {
            Formula::Atom(a) => {
                out.push((pos, a.negate()));
                true
            }
            _ => false,
        },
        Formula::And(fs) => fs.iter().all(|g| flatten_conj(g, pos, out)),
        Formula::Or(_) => false,
    }
}

/// Maps a mined solver atom back to a program predicate. Fails (and
/// the atom is dropped) when the atom mixes locals of two different
/// threads, mentions two instances of the same variable, or mentions
/// a nondet-fresh variable.
fn pred_of_atom(ssa: &SsaResult, atom: &Atom) -> Option<Pred> {
    let mut local_tag: Option<usize> = None;
    let mut seen_vars: BTreeSet<Var> = BTreeSet::new();
    let mut lhs = Expr::Int(0);
    let mut rhs = Expr::Int(0);
    let mut lhs_empty = true;
    let mut rhs_empty = true;
    for (sv, coef) in atom.expr().terms() {
        let &(scope, v) = ssa.origin.get(&sv)?;
        if let Scope::Local(t) = scope {
            match local_tag {
                None => local_tag = Some(t),
                Some(t0) if t0 == t => {}
                Some(_) => return None,
            }
        }
        if !seen_vars.insert(v) {
            return None; // two instances of the same variable
        }
        let term = |c: i64| {
            if c == 1 {
                Expr::var(v)
            } else {
                Expr::int(c) * Expr::var(v)
            }
        };
        if coef > 0 {
            lhs = if lhs_empty { term(coef) } else { lhs + term(coef) };
            lhs_empty = false;
        } else {
            rhs = if rhs_empty { term(-coef) } else { rhs + term(-coef) };
            rhs_empty = false;
        }
    }
    if lhs_empty && rhs_empty {
        return None; // constant atom, useless as a predicate
    }
    let c = atom.expr().constant_part();
    if c != 0 {
        if rhs_empty {
            rhs = Expr::int(-c);
            rhs_empty = false;
        } else {
            rhs = rhs - Expr::int(c);
        }
    } else if rhs_empty {
        rhs = Expr::int(0);
        rhs_empty = false;
    }
    let _ = rhs_empty;
    let op = match atom.rel() {
        Rel::Eq => CmpOp::Eq,
        Rel::Le => CmpOp::Le,
        Rel::Ne => CmpOp::Ne,
    };
    // If everything landed on the rhs (lhs empty), flip.
    let (l, r, op) =
        if matches!(lhs, Expr::Int(0)) { (rhs, Expr::int(0), mirror(op)) } else { (lhs, rhs, op) };
    Some(Pred::new(simplify(l), op, simplify(r)))
}

fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Gt => CmpOp::Lt,
        other => other,
    }
}

fn simplify(e: Expr) -> Expr {
    match e {
        Expr::Bin(BinOp::Add, a, b) => {
            let (a, b) = (simplify(*a), simplify(*b));
            match (&a, &b) {
                (Expr::Int(0), _) => b,
                (_, Expr::Int(0)) => a,
                _ => a + b,
            }
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            let (a, b) = (simplify(*a), simplify(*b));
            match &b {
                Expr::Int(0) => a,
                _ => a - b,
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_handles_nested_and() {
        let a = Atom::eq(LinExpr::var(SVar(0)));
        let f = Formula::atom(a.clone())
            .and(Formula::atom(a.clone()).not())
            .and(Formula::atom(a.clone()));
        let mut out = Vec::new();
        assert!(flatten_conj(&f, 3, &mut out));
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(p, _)| *p == 3));
    }

    #[test]
    fn flatten_rejects_disjunction() {
        let a = Formula::atom(Atom::eq(LinExpr::var(SVar(0))));
        let f = a.clone().or(a);
        let mut out = Vec::new();
        assert!(!flatten_conj(&f, 0, &mut out));
    }

    #[test]
    fn placement_moves_floating_segment_to_anchor() {
        let e = EdgeId::from_raw;
        let segments = vec![
            Segment { tag: 1, ops: vec![e(0)], float_anchor: None },
            Segment { tag: 2, ops: vec![e(1)], float_anchor: Some(usize::MAX) },
            Segment { tag: 2, ops: vec![e(2)], float_anchor: None },
        ];
        // mask 0: original order
        assert_eq!(place_segments(&segments, &[1], 0), vec![0, 1, 2]);
        // mask 1: segment 1 floats to the very start
        assert_eq!(place_segments(&segments, &[1], 1), vec![1, 0, 2]);
    }

    #[test]
    fn placement_respects_anchor_position() {
        let e = EdgeId::from_raw;
        let segments = vec![
            Segment { tag: 1, ops: vec![e(0)], float_anchor: None },
            Segment { tag: 0, ops: vec![e(1)], float_anchor: None },
            Segment { tag: 1, ops: vec![e(2)], float_anchor: Some(0) },
        ];
        // floated: lands right after its anchor (segment 0)
        assert_eq!(place_segments(&segments, &[2], 1), vec![0, 2, 1]);
    }
}
