//! The abstract reachability graph (ARG) built by `ReachAndBuild`
//! (Algorithms 1–4 of the paper).
//!
//! ARG locations summarize abstract *thread states* `(pc, cube)` of
//! the main thread (context counters dropped); the augmented map `S`
//! records which thread states each location covers and `R` labels it
//! with their union region. `Connect` adds edges: an assignment
//! `x := e` contributes `{x}` to the havoc label, an assume
//! contributes a silent edge — unless an edge already joins the two
//! locations, in which case they are `Union`ed, as are the endpoints
//! of every environment (context) move (ARG condition 4 of §3.4).
//!
//! Alongside the location-level graph, the ARG records the exact
//! state-level transitions; `Refine` replays them to concretize
//! abstract context moves into CFA paths.

use crate::preds::PredSet;
use circ_acfa::{Acfa, AcfaEdge, AcfaLocId, Cube, Region};
use circ_ir::{Cfa, EdgeId, Loc, Op, Var};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An abstract thread state: main-thread control location plus data
/// cube.
pub type ThreadState = (Loc, Cube);

/// What induced a state-level ARG transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateEdgeKind {
    /// The main thread took this CFA edge.
    MainOp(EdgeId),
    /// A context thread moved, havocking these globals.
    Context(BTreeSet<Var>),
}

/// A state-level transition recorded during reachability.
#[derive(Debug, Clone)]
pub struct StateEdge {
    /// Source thread state.
    pub src: ThreadState,
    /// What happened.
    pub kind: StateEdgeKind,
    /// Target thread state.
    pub dst: ThreadState,
}

/// The augmented abstract reachability graph.
#[derive(Debug, Clone)]
pub struct Arg {
    /// Union-find parents over location slots.
    parent: Vec<usize>,
    regions: Vec<Region>,
    states: Vec<BTreeSet<ThreadState>>,
    atomic: Vec<bool>,
    state_to_loc: HashMap<ThreadState, usize>,
    /// Location-level edges `(src slot, dst slot, havoc)`; slots are
    /// canonicalized lazily at export.
    loc_edges: Vec<(usize, usize, BTreeSet<Var>)>,
    /// Fast existence check for Algorithm 2's "already an edge" test,
    /// keyed by canonical slots (rebuilt after unions).
    edge_index: BTreeSet<(usize, usize)>,
    state_edges: Vec<StateEdge>,
    entry: Option<ThreadState>,
}

/// The ARG exported as an ACFA (labels projected onto global
/// predicates, havocs restricted to globals) plus the map from thread
/// states to exported locations.
#[derive(Debug, Clone)]
pub struct ExportedArg {
    /// The ARG as an abstract control flow automaton.
    pub acfa: Acfa,
    /// Exported location of each covered thread state.
    pub state_loc: HashMap<ThreadState, AcfaLocId>,
}

impl Arg {
    /// An empty ARG.
    pub fn new() -> Arg {
        Arg {
            parent: Vec::new(),
            regions: Vec::new(),
            states: Vec::new(),
            atomic: Vec::new(),
            state_to_loc: HashMap::new(),
            loc_edges: Vec::new(),
            edge_index: BTreeSet::new(),
            state_edges: Vec::new(),
            entry: None,
        }
    }

    /// Registers the initial thread state (must be called once before
    /// any `connect`).
    ///
    /// # Panics
    ///
    /// Panics on a second call.
    pub fn set_entry(&mut self, cfa: &Cfa, s: ThreadState) {
        assert!(self.entry.is_none(), "entry already set");
        self.entry = Some(s.clone());
        self.find_or_create(cfa, &s);
    }

    /// The number of live (canonical) locations.
    pub fn num_locs(&self) -> usize {
        (0..self.parent.len()).filter(|&i| self.find(i) == i).count()
    }

    /// The recorded state-level transitions.
    pub fn state_edges(&self) -> &[StateEdge] {
        &self.state_edges
    }

    /// The initial thread state, if set.
    pub fn entry_state(&self) -> Option<&ThreadState> {
        self.entry.as_ref()
    }

    /// All thread states the ARG covers.
    pub fn thread_states(&self) -> impl Iterator<Item = &ThreadState> {
        self.state_to_loc.keys()
    }

    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    /// Algorithm 3 (`Find`): the location covering `s`, created fresh
    /// if none does.
    fn find_or_create(&mut self, cfa: &Cfa, s: &ThreadState) -> usize {
        if let Some(&ix) = self.state_to_loc.get(s) {
            return self.find(ix);
        }
        let ix = self.parent.len();
        self.parent.push(ix);
        self.regions.push(Region::of_cube(s.1.clone()));
        self.states.push([s.clone()].into());
        self.atomic.push(cfa.is_atomic(s.0));
        self.state_to_loc.insert(s.clone(), ix);
        ix
    }

    /// Algorithm 4 (`Union`): merges the locations of slots `a`, `b`.
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Merge the smaller member set into the larger.
        let (keep, drop) =
            if self.states[ra].len() >= self.states[rb].len() { (ra, rb) } else { (rb, ra) };
        self.parent[drop] = keep;
        let moved = std::mem::take(&mut self.states[drop]);
        self.states[keep].extend(moved);
        let region = std::mem::take(&mut self.regions[drop]);
        self.regions[keep].union(&region);
        // Mixed atomicity degrades to non-atomic: the context model
        // may only claim atomicity when every covered state has it
        // (claiming it otherwise would *restrict* interleavings).
        self.atomic[keep] = self.atomic[keep] && self.atomic[drop];
        // Rebuild the edge existence index with canonical slots.
        self.edge_index =
            self.loc_edges.iter().map(|(s, d, _)| (self.find(*s), self.find(*d))).collect();
    }

    fn add_loc_edge(&mut self, src: usize, dst: usize, havoc: BTreeSet<Var>) {
        let key = (self.find(src), self.find(dst));
        if self.edge_index.contains(&key) {
            // Merge into the existing edge(s) by unioning havocs: find
            // one with matching canonical endpoints.
            for (s, d, h) in &mut self.loc_edges {
                let sk = {
                    let mut i = *s;
                    while self.parent[i] != i {
                        i = self.parent[i];
                    }
                    i
                };
                let dk = {
                    let mut i = *d;
                    while self.parent[i] != i {
                        i = self.parent[i];
                    }
                    i
                };
                if (sk, dk) == key {
                    h.extend(havoc);
                    return;
                }
            }
        }
        self.loc_edges.push((key.0, key.1, havoc));
        self.edge_index.insert(key);
    }

    /// Algorithm 2 (`Connect`): records the transition `r --op--> r'`.
    pub fn connect(&mut self, cfa: &Cfa, r: &ThreadState, kind: StateEdgeKind, r2: &ThreadState) {
        let n = self.find_or_create(cfa, r);
        let n2 = self.find_or_create(cfa, r2);
        match &kind {
            StateEdgeKind::MainOp(eid) => match &cfa.edge(*eid).op {
                Op::Assign(x, _) => {
                    self.add_loc_edge(n, n2, [*x].into());
                }
                Op::Assume(_) => {
                    // "We add the edge n -∅→ n′ … unless there is
                    // already an edge n → n′" (§5, Connect). Only
                    // *context* moves unify locations; merging assume
                    // endpoints would collapse the guard classes whose
                    // labels carry the synchronization argument.
                    let key = (self.find(n), self.find(n2));
                    if key.0 != key.1 && !self.edge_index.contains(&key) {
                        self.add_loc_edge(n, n2, BTreeSet::new());
                    }
                }
            },
            StateEdgeKind::Context(_) => {
                // ARG condition (4): environment moves stay within one
                // location.
                self.union(n, n2);
            }
        }
        self.state_edges.push(StateEdge { src: r.clone(), kind, dst: r2.clone() });
    }

    /// Exports the ARG as an ACFA over the global predicates.
    ///
    /// # Panics
    ///
    /// Panics if the entry was never set.
    pub fn export(&self, cfa: &Cfa, preds: &PredSet) -> ExportedArg {
        let entry = self.entry.as_ref().expect("ARG entry not set");
        let entry_root = self.find(self.state_to_loc[entry]);
        // Stable numbering: entry first, then remaining roots in slot
        // order.
        let mut roots: Vec<usize> = (0..self.parent.len())
            .filter(|&i| self.find(i) == i && !self.states[i].is_empty())
            .collect();
        roots.sort_unstable();
        roots.retain(|&r| r != entry_root);
        roots.insert(0, entry_root);
        let root_to_id: BTreeMap<usize, AcfaLocId> =
            roots.iter().enumerate().map(|(i, &r)| (r, AcfaLocId(i as u32))).collect();

        let keep_global = |i: circ_acfa::PredIx| preds.is_global_only(i);
        let regions: Vec<Region> =
            roots.iter().map(|&r| self.regions[r].project(&keep_global)).collect();
        let atomic: Vec<bool> = roots.iter().map(|&r| self.atomic[r]).collect();

        // Merge edges per (src, dst) with global-only havocs; drop
        // silent self loops.
        let mut merged: BTreeMap<(AcfaLocId, AcfaLocId), BTreeSet<Var>> = BTreeMap::new();
        for (s, d, havoc) in &self.loc_edges {
            let sid = root_to_id[&self.find(*s)];
            let did = root_to_id[&self.find(*d)];
            let ghavoc: BTreeSet<Var> =
                havoc.iter().copied().filter(|v| cfa.is_global(*v)).collect();
            if sid == did && ghavoc.is_empty() {
                continue;
            }
            merged.entry((sid, did)).or_default().extend(ghavoc);
        }
        // A merged self loop may have ended up empty after the global
        // filter; drop those too.
        let edges: Vec<AcfaEdge> = merged
            .into_iter()
            .filter(|((s, d), h)| !(s == d && h.is_empty()))
            .map(|((src, dst), havoc)| AcfaEdge { src, havoc, dst })
            .collect();

        let acfa = Acfa::from_parts(regions, atomic, edges);
        let state_loc = self
            .state_to_loc
            .iter()
            .map(|(s, &ix)| (s.clone(), root_to_id[&self.find(ix)]))
            .collect();
        ExportedArg { acfa, state_loc }
    }
}

impl Default for Arg {
    fn default() -> Arg {
        Arg::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::{figure1_cfa, Expr, Pred};
    use std::sync::Arc;

    fn setup() -> (Arc<Cfa>, PredSet) {
        let cfa = Arc::new(figure1_cfa());
        let state = cfa.var_by_name("state").unwrap();
        let old = cfa.var_by_name("old").unwrap();
        let preds = PredSet::from_preds(
            &cfa,
            [
                Pred::eq(Expr::var(state), Expr::int(0)), // global-only
                Pred::eq(Expr::var(old), Expr::int(0)),   // local
            ],
        );
        (cfa, preds)
    }

    fn st(l: u32, cube: &Cube) -> ThreadState {
        (Loc::from_raw(l), cube.clone())
    }

    #[test]
    fn find_creates_one_loc_per_state() {
        let (cfa, _) = setup();
        let mut arg = Arg::new();
        let top = Cube::top(2);
        arg.set_entry(&cfa, st(0, &top));
        arg.connect(&cfa, &st(0, &top), StateEdgeKind::MainOp(EdgeId::from_raw(0)), &st(1, &top));
        arg.connect(&cfa, &st(0, &top), StateEdgeKind::MainOp(EdgeId::from_raw(0)), &st(1, &top));
        assert_eq!(arg.num_locs(), 2);
        assert_eq!(arg.state_edges().len(), 2);
    }

    #[test]
    fn context_edges_union_locations() {
        let (cfa, _) = setup();
        let mut arg = Arg::new();
        let top = Cube::top(2);
        let c1 = top.with(circ_acfa::PredIx(0), true);
        arg.set_entry(&cfa, st(0, &top));
        arg.connect(
            &cfa,
            &st(0, &top),
            StateEdgeKind::Context([cfa.var_by_name("state").unwrap()].into()),
            &st(0, &c1),
        );
        // both states share one location now
        assert_eq!(arg.num_locs(), 1);
    }

    #[test]
    fn export_projects_locals_and_globals() {
        let (cfa, preds) = setup();
        let state = cfa.var_by_name("state").unwrap();
        let old = cfa.var_by_name("old").unwrap();
        let mut arg = Arg::new();
        // cube: state=0 (global pred) ∧ old=0 (local pred)
        let cube = Cube::top(2).with(circ_acfa::PredIx(0), true).with(circ_acfa::PredIx(1), true);
        arg.set_entry(&cfa, st(0, &cube));
        // an assignment to the local `old` then to the global `state`
        arg.connect(&cfa, &st(0, &cube), StateEdgeKind::MainOp(EdgeId::from_raw(0)), &st(1, &cube));
        arg.connect(&cfa, &st(1, &cube), StateEdgeKind::MainOp(EdgeId::from_raw(2)), &st(3, &cube));
        let exported = arg.export(&cfa, &preds);
        let acfa = &exported.acfa;
        assert_eq!(acfa.num_locs(), 3);
        // edge 0 assigns `old` (local): its havoc must be stripped
        let entry_edges: Vec<_> = acfa.out_edges(acfa.entry()).collect();
        assert_eq!(entry_edges.len(), 1);
        assert!(entry_edges[0].havoc.is_empty(), "local havoc stripped");
        // edge 2 assigns `state` (global): havoc survives
        let mid = entry_edges[0].dst;
        let mid_edges: Vec<_> = acfa.out_edges(mid).collect();
        assert_eq!(mid_edges[0].havoc, [state].into());
        let _ = old;
        // labels only constrain the global predicate
        for q in acfa.locs() {
            for c in acfa.region(q).cubes() {
                assert_eq!(c.get(circ_acfa::PredIx(1)), None, "local pred projected out");
            }
        }
    }

    #[test]
    fn assume_keeps_locations_separate() {
        let (cfa, _) = setup();
        let mut arg = Arg::new();
        let top = Cube::top(2);
        arg.set_entry(&cfa, st(0, &top));
        // first an assignment edge 0 -> 1 (edge 0 of figure 1 assigns old)
        arg.connect(&cfa, &st(0, &top), StateEdgeKind::MainOp(EdgeId::from_raw(0)), &st(1, &top));
        assert_eq!(arg.num_locs(), 2);
        // an assume between the same two locations adds no edge and
        // must NOT merge them (only context moves Union; merging here
        // would collapse the guard classes the proofs depend on).
        arg.connect(&cfa, &st(0, &top), StateEdgeKind::MainOp(EdgeId::from_raw(1)), &st(1, &top));
        assert_eq!(arg.num_locs(), 2);
        // a second assignment between them merges havocs on the edge
        arg.connect(&cfa, &st(0, &top), StateEdgeKind::MainOp(EdgeId::from_raw(2)), &st(1, &top));
        assert_eq!(arg.num_locs(), 2);
    }

    #[test]
    fn atomicity_from_cfa_locations() {
        let (cfa, preds) = setup();
        let mut arg = Arg::new();
        let top = Cube::top(2);
        arg.set_entry(&cfa, st(0, &top));
        // figure 1: location 1 (builder index 1) is atomic
        arg.connect(&cfa, &st(0, &top), StateEdgeKind::MainOp(EdgeId::from_raw(0)), &st(1, &top));
        let exported = arg.export(&cfa, &preds);
        let entry = exported.acfa.entry();
        assert!(!exported.acfa.is_atomic(entry));
        let dst = exported.acfa.out_edges(entry).next().unwrap().dst;
        assert!(exported.acfa.is_atomic(dst));
    }

    #[test]
    fn export_entry_is_location_zero() {
        let (cfa, preds) = setup();
        let mut arg = Arg::new();
        let top = Cube::top(2);
        arg.set_entry(&cfa, st(0, &top));
        arg.connect(&cfa, &st(0, &top), StateEdgeKind::MainOp(EdgeId::from_raw(0)), &st(1, &top));
        let exported = arg.export(&cfa, &preds);
        assert_eq!(exported.state_loc[&st(0, &top)], exported.acfa.entry());
    }
}
