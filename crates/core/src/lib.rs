//! CIRC: race checking by context inference.
//!
//! This crate is the heart of the reproduction of *"Race Checking by
//! Context Inference"* (Henzinger, Jhala, Majumdar; PLDI 2004): a
//! static race verifier for symmetric multithreaded programs with
//! *unboundedly many threads*, built from
//!
//! * cartesian **predicate abstraction** with counterexample-guided
//!   refinement ([`AbsCtx`], [`refine`]),
//! * **stateful context models**: abstract control flow automata
//!   obtained as weak-bisimilarity quotients of abstract reachability
//!   graphs ([`Arg`], `circ_acfa::collapse`),
//! * **counter abstraction** of the number of context threads, and
//! * circular **assume–guarantee** reasoning ([`reach_and_build`] for
//!   the assume step, `circ_acfa::check_sim` for the guarantee).
//!
//! The top-level entry point is [`circ`] with a [`CircConfig`]
//! (plain CIRC or the faster ω-CIRC variant).
//!
//! # Example
//!
//! Prove the paper's Figure 1 test-and-set idiom race-free:
//!
//! ```
//! use circ_core::{circ, CircConfig};
//! use circ_ir::{figure1_cfa, MtProgram};
//!
//! let cfa = figure1_cfa();
//! let x = cfa.var_by_name("x").unwrap();
//! let program = MtProgram::new(cfa, x);
//! let outcome = circ(&program, &CircConfig::default());
//! assert!(outcome.is_safe());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abs;
mod arg;
mod cache;
mod circ;
pub mod persist;
pub mod pred_store;
mod preds;
mod reach;
mod refine;

pub use crate::circ::{
    circ, circ_with_cache, circ_with_caches, CircConfig, CircEvent, CircLog, CircOutcome,
    CircStats, SafeReport, UnknownReason, UnknownReport, UnsafeReport,
};
pub use abs::AbsCtx;
pub use arg::{Arg, ExportedArg, StateEdge, StateEdgeKind, ThreadState};
pub use cache::{AbsCache, AbsSeed};
pub use circ_governor::{Budget, CancelToken, Exhausted, FaultPlan};
pub use circ_smt::{PersistError, SolverPersist};
pub use circ_stats::{AbsCounters, PipelineStats, SolverCounters};
pub use pred_store::{PredStore, StoredPreds};
pub use preds::PredSet;
pub use reach::{
    reach_and_build, AbsState, AbstractCex, AbstractError, AbstractRace, Property, ReachError,
    TraceOp,
};
pub use refine::{refine, ConcreteCex, Concretizer, RefineDetail, RefineError, RefineOutcome};
