//! The shared entailment cache of the abstraction layer.
//!
//! CIRC's dominant cost is cube/predicate entailment queries: every
//! abstract post-image asks, per predicate, whether the pre-state
//! facts force it true or false. The per-[`AbsCtx`] post-image memos
//! (keyed on cubes) die with their context — a fresh `AbsCtx` is
//! built each outer round because the predicate set grew, and cube
//! keys are meaningless across predicate numberings.
//!
//! [`AbsCache`] memoizes one level lower, on the *concrete LIA atoms*
//! of each query. Atoms are stable across predicate growth: they are
//! built over solver variables fixed by the variable numbering of the
//! CFA (`pre(v) = 2·index`, `post(v) = 2·index + 1`), not by predicate
//! indices. A key is the canonicalized `(premises, goal)` pair —
//! premises sorted and deduplicated, every atom sign-normalized via
//! [`Atom::canonical`] (a semantics-preserving rewrite). Two queries
//! with the same key are therefore the same logical question, so a
//! cached answer can never change a [`crate::CircOutcome`]: the LIA
//! procedure is deterministic and the cache only replays its answers.
//!
//! The cache is an `Arc` handle over a [`ShardedMap`] pair: cloning
//! shares the store, so one cache can serve every `AbsCtx` of a run —
//! and every run of a benchmark loop, which is where the
//! CheckSim/ReachAndBuild alternation re-asks the bulk of its
//! questions. Lookups *compute under the shard lock*, so per distinct
//! key there is exactly one miss under any thread interleaving: the
//! hit/miss/query totals reported by [`AbsCache::counters`] are
//! identical between `--jobs 1` and `--jobs N` for the same query
//! multiset.
//!
//! [`AbsCtx`]: crate::AbsCtx

use circ_par::ShardedMap;
use circ_smt::{lia, Atom};
use circ_stats::AbsCounters;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Canonical form of a premise list: sorted, deduplicated,
/// sign-normalized atoms.
fn canon_premises(premises: &[Atom]) -> Vec<Atom> {
    let mut v: Vec<Atom> = premises.iter().map(Atom::canonical).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[derive(Debug)]
struct CacheShared {
    entails: ShardedMap<(Vec<Atom>, Atom), bool>,
    sat: ShardedMap<Vec<Atom>, bool>,
    queries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: bool,
}

/// A shareable, thread-safe memo of abstraction-layer LIA queries
/// (see the module docs for the key discipline). Clones share one
/// store.
#[derive(Debug, Clone)]
pub struct AbsCache {
    inner: Arc<CacheShared>,
}

impl Default for AbsCache {
    fn default() -> AbsCache {
        AbsCache::new()
    }
}

impl AbsCache {
    fn with_enabled(enabled: bool) -> AbsCache {
        AbsCache {
            inner: Arc::new(CacheShared {
                entails: ShardedMap::new(),
                sat: ShardedMap::new(),
                queries: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                enabled,
            }),
        }
    }

    /// A fresh, enabled cache.
    pub fn new() -> AbsCache {
        AbsCache::with_enabled(true)
    }

    /// A pass-through handle: queries are counted but never memoized.
    /// Used for the cached-vs-uncached differential.
    pub fn disabled() -> AbsCache {
        AbsCache::with_enabled(false)
    }

    /// Whether this handle memoizes results.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    fn record(&self, hit: bool) {
        self.inner.queries.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Does the conjunction of `premises` entail `goal`?
    pub fn entails(&self, premises: &[Atom], goal: &Atom) -> bool {
        if !self.inner.enabled {
            self.record(false);
            return lia::entails(premises, goal);
        }
        let key = (canon_premises(premises), goal.canonical());
        let (result, hit) = self.inner.entails.get_or_compute(key, || lia::entails(premises, goal));
        self.record(hit);
        result
    }

    /// Is the conjunction of `atoms` satisfiable?
    pub fn is_sat_conj(&self, atoms: &[Atom]) -> bool {
        if !self.inner.enabled {
            self.record(false);
            return lia::is_sat_conj(atoms);
        }
        let key = canon_premises(atoms);
        let (result, hit) = self.inner.sat.get_or_compute(key, || lia::is_sat_conj(atoms));
        self.record(hit);
        result
    }

    /// Snapshot of the cumulative counters (use
    /// [`AbsCounters::since`] for per-run deltas on a shared cache).
    pub fn counters(&self) -> AbsCounters {
        AbsCounters {
            queries: self.inner.queries.load(Ordering::Relaxed),
            cache_hits: self.inner.hits.load(Ordering::Relaxed),
            cache_misses: self.inner.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized entries across both maps.
    pub fn len(&self) -> usize {
        self.inner.entails.len() + self.inner.sat.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A fresh, enabled cache warm-started from a frozen seed.
    /// Preloaded entries bypass the counters, so the first query of a
    /// seeded key counts as a *hit* — which is exactly the observable
    /// difference between a warm and a cold run.
    pub fn with_seed(seed: &AbsSeed) -> AbsCache {
        let cache = AbsCache::new();
        for ((premises, goal), result) in &seed.inner.entails {
            cache.inner.entails.insert((premises.clone(), goal.clone()), *result);
        }
        for (atoms, result) in &seed.inner.sat {
            cache.inner.sat.insert(atoms.clone(), *result);
        }
        cache
    }

    /// A frozen, deterministically ordered snapshot of the memoized
    /// entries (sorted by key, so two caches with equal content
    /// snapshot identically regardless of insertion order).
    pub fn snapshot(&self) -> AbsSeed {
        let mut entails = self.inner.entails.snapshot();
        entails.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut sat = self.inner.sat.snapshot();
        sat.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        AbsSeed { inner: Arc::new(AbsSeedInner { entails, sat }) }
    }

    /// Folds another cache's entries into this one, first write wins,
    /// without touching any counters. Used to merge what isolated
    /// per-file batch caches learned into the store that gets saved.
    pub fn absorb(&self, other: &AbsCache) {
        for (key, result) in other.inner.entails.snapshot() {
            self.inner.entails.insert(key, result);
        }
        for (key, result) in other.inner.sat.snapshot() {
            self.inner.sat.insert(key, result);
        }
    }
}

/// An immutable, shareable snapshot of [`AbsCache`] entries — what the
/// persistence layer saves and what warm-started caches preload from.
///
/// Keeping the seed frozen (instead of handing concurrent runs one
/// live shared cache) is what makes batch counters deterministic:
/// every file sees exactly the seed, never a sibling's in-flight
/// discoveries, so its hit/miss totals are independent of scheduling.
#[derive(Debug, Clone, Default)]
pub struct AbsSeed {
    inner: Arc<AbsSeedInner>,
}

#[derive(Debug, Default)]
struct AbsSeedInner {
    entails: Vec<((Vec<Atom>, Atom), bool)>,
    sat: Vec<(Vec<Atom>, bool)>,
}

impl AbsSeed {
    /// The empty seed (a cold start).
    pub fn empty() -> AbsSeed {
        AbsSeed::default()
    }

    /// Builds a seed from raw entry lists (the persistence loader),
    /// sorting by key so equal content always yields an identical
    /// seed. Keys are trusted to be canonical — they are either
    /// freshly parsed through the canonicalizing atom constructors or
    /// came from a snapshot.
    pub fn from_entries(
        mut entails: Vec<((Vec<Atom>, Atom), bool)>,
        mut sat: Vec<(Vec<Atom>, bool)>,
    ) -> AbsSeed {
        entails.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        sat.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        AbsSeed { inner: Arc::new(AbsSeedInner { entails, sat }) }
    }

    /// Entailment entries (sorted by key when built by
    /// [`AbsCache::snapshot`]).
    pub fn entails_entries(&self) -> &[((Vec<Atom>, Atom), bool)] {
        &self.inner.entails
    }

    /// Conjunction-satisfiability entries.
    pub fn sat_entries(&self) -> &[(Vec<Atom>, bool)] {
        &self.inner.sat
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.inner.entails.len() + self.inner.sat.len()
    }

    /// True when the seed carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_smt::{LinExpr, SVar};

    fn x() -> LinExpr {
        LinExpr::var(SVar(0))
    }

    #[test]
    fn entailment_is_memoized_and_canonicalized() {
        let cache = AbsCache::new();
        // x = 0 ∧ x ≤ 3 ⊨ x ≤ 5
        let premises = [Atom::eq(x()), Atom::le(x() - LinExpr::constant(3))];
        let goal = Atom::le(x() - LinExpr::constant(5));
        assert!(cache.entails(&premises, &goal));
        // Same question, permuted and duplicated premises: a hit.
        let permuted = [Atom::le(x() - LinExpr::constant(3)), Atom::eq(x()), Atom::eq(x())];
        assert!(cache.entails(&permuted, &goal));
        let c = cache.counters();
        assert_eq!(c.queries, 2);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sign_normalization_shares_entries() {
        let cache = AbsCache::new();
        // x = 0 and -x = 0 are the same atom up to canonical sign.
        assert!(cache.is_sat_conj(&[Atom::eq(x())]));
        assert!(cache.is_sat_conj(&[Atom::eq(-x())]));
        assert_eq!(cache.counters().cache_hits, 1);
    }

    #[test]
    fn clones_share_the_store() {
        let a = AbsCache::new();
        let b = a.clone();
        assert!(a.is_sat_conj(&[Atom::eq(x())]));
        assert!(b.is_sat_conj(&[Atom::eq(x())]));
        assert_eq!(a.counters().cache_hits, 1);
        assert_eq!(b.counters().cache_hits, 1);
    }

    #[test]
    fn disabled_cache_counts_but_never_stores() {
        let cache = AbsCache::disabled();
        let premises = [Atom::eq(x())];
        let goal = Atom::le(x());
        assert!(cache.entails(&premises, &goal));
        assert!(cache.entails(&premises, &goal));
        let c = cache.counters();
        assert_eq!(c.queries, 2);
        assert_eq!(c.cache_hits, 0);
        assert_eq!(c.cache_misses, 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn seeded_cache_hits_where_cold_misses() {
        let cold = AbsCache::new();
        let premises = [Atom::eq(x())];
        let goal = Atom::le(x());
        assert!(cold.entails(&premises, &goal));
        assert!(cold.is_sat_conj(&premises));
        assert_eq!(cold.counters().cache_misses, 2);

        let warm = AbsCache::with_seed(&cold.snapshot());
        assert!(warm.entails(&premises, &goal));
        assert!(warm.is_sat_conj(&premises));
        let c = warm.counters();
        assert_eq!(c.cache_hits, 2, "seeded keys must hit on first query");
        assert_eq!(c.cache_misses, 0);
    }

    #[test]
    fn snapshot_is_order_independent() {
        let a = AbsCache::new();
        let b = AbsCache::new();
        let k1 = [Atom::eq(x())];
        let k2 = [Atom::le(x() - LinExpr::constant(7))];
        a.is_sat_conj(&k1);
        a.is_sat_conj(&k2);
        b.is_sat_conj(&k2);
        b.is_sat_conj(&k1);
        assert_eq!(a.snapshot().sat_entries(), b.snapshot().sat_entries());
    }

    #[test]
    fn absorb_merges_without_counting() {
        let master = AbsCache::new();
        let worker = AbsCache::new();
        worker.is_sat_conj(&[Atom::eq(x())]);
        master.absorb(&worker);
        assert_eq!(master.len(), 1);
        assert_eq!(master.counters().queries, 0);
        // First-write-wins: absorbing again is a no-op.
        master.absorb(&worker);
        assert_eq!(master.len(), 1);
    }

    #[test]
    fn concurrent_hammering_counts_one_miss_per_key() {
        let cache = AbsCache::new();
        let tasks: Vec<u32> = (0..64).collect();
        circ_par::Pool::new(4).map(&tasks, |_| {
            assert!(cache.is_sat_conj(&[Atom::eq(x())]));
        });
        let c = cache.counters();
        assert_eq!(c.queries, 64);
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.cache_hits, 63);
    }
}
