//! The predicate-abstraction engine: cartesian abstract post-images
//! for thread operations (assign/assume) and context operations
//! (havoc into a labeled ACFA location), per §3.4.
//!
//! Abstract data states are [`Cube`]s over the current [`PredSet`].
//! Each post-image question is answered with entailment queries to
//! the `circ-smt` layer:
//!
//! * `post_assign`: for every predicate `p`, does
//!   `cube ∧ x′ = e ⊨ p′` (assign true) or `⊨ ¬p′` (assign false)?
//! * `post_assume`: is `cube ∧ b` satisfiable, and which predicates
//!   does it decide?
//! * `post_context`: drop predicates touched by the havoc set, meet
//!   with the target location's label, discard unsatisfiable cubes.
//!
//! Results are memoized per `(cube, operation)` — the same abstract
//! states recur across the many reachability runs of CIRC's nested
//! loops.

use crate::cache::AbsCache;
use crate::preds::PredSet;
use circ_acfa::{Cube, PredIx, Region};
use circ_ir::{BoolExpr, Cfa, EdgeId, Expr, Op, Var};
use circ_par::ShardedMap;
use circ_smt::{translate, Atom, Formula, LinExpr, SVar, SharedSolver};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Pre-state instance of a program variable.
fn pre(v: Var) -> SVar {
    SVar(v.index() as u32 * 2)
}

/// Post-state instance of a program variable.
fn post(v: Var) -> SVar {
    SVar(v.index() as u32 * 2 + 1)
}

/// The abstraction context: CFA + predicate set + solver + caches.
///
/// Every query method takes `&self`: the solver is sharded behind
/// mutexes ([`SharedSolver`]) and the memo tables are [`ShardedMap`]s,
/// so one context can serve all worker threads of a parallel
/// reachability run. All memoization computes under the owning shard
/// lock, which keeps hit/miss counters exact under concurrency.
pub struct AbsCtx {
    cfa: Arc<Cfa>,
    preds: PredSet,
    solver: SharedSolver,
    /// Atom-level entailment memo, shareable across contexts (and
    /// across whole CIRC runs — its keys survive predicate growth).
    cache: AbsCache,
    /// Pre-translated atoms per predicate (pre-state instance); `None`
    /// if the predicate falls outside linear arithmetic.
    pred_atoms: Vec<Option<Atom>>,
    assign_cache: ShardedMap<(Cube, EdgeId), Cube>,
    assume_cache: ShardedMap<(Cube, EdgeId), Option<Cube>>,
    context_cache: ShardedMap<(Cube, BTreeSet<Var>, Region), Vec<Cube>>,
    /// Persistence store this context's solver was seeded from. On
    /// drop, the solver's learned entries are absorbed back into it —
    /// `Drop` rather than an explicit hook because a context retires
    /// on many paths (every verdict return, plus panic unwinding) and
    /// absorption must happen exactly once on all of them. Inert (and
    /// absorption a no-op) unless constructed via [`AbsCtx::with_parts`].
    solver_persist: circ_smt::SolverPersist,
}

impl Drop for AbsCtx {
    fn drop(&mut self) {
        if self.solver_persist.is_active() {
            self.solver_persist.absorb(self.solver.entries());
        }
    }
}

impl AbsCtx {
    /// Creates an abstraction context for a CFA and predicate set,
    /// with a private query cache.
    pub fn new(cfa: Arc<Cfa>, preds: PredSet) -> AbsCtx {
        AbsCtx::with_cache(cfa, preds, AbsCache::new())
    }

    /// Creates an abstraction context sharing `cache` with other
    /// contexts. A disabled cache (see [`AbsCache::disabled`]) also
    /// turns off the solver's formula-level memo, giving a fully
    /// uncached context for differentials.
    pub fn with_cache(cfa: Arc<Cfa>, preds: PredSet, cache: AbsCache) -> AbsCtx {
        AbsCtx::with_cache_and_budget(cfa, preds, cache, circ_governor::Budget::unlimited())
    }

    /// [`AbsCtx::with_cache`] with a resource budget handed to the
    /// underlying solver: the DPLL(T) loop polls it per theory round
    /// (degrading to `Unknown` on exhaustion) and formula-cache
    /// growth is charged against its memory ceiling.
    pub fn with_cache_and_budget(
        cfa: Arc<Cfa>,
        preds: PredSet,
        cache: AbsCache,
        budget: circ_governor::Budget,
    ) -> AbsCtx {
        AbsCtx::with_parts(cfa, preds, cache, budget, &circ_smt::SolverPersist::inert())
    }

    /// [`AbsCtx::with_cache_and_budget`] additionally warm-starting
    /// this context's solver from a persistence store's frozen seed
    /// (see [`circ_smt::SolverPersist`]). The store is only *read*
    /// here; what the round's solver learns is absorbed back by the
    /// caller when the context retires.
    pub fn with_parts(
        cfa: Arc<Cfa>,
        preds: PredSet,
        cache: AbsCache,
        budget: circ_governor::Budget,
        solver_persist: &circ_smt::SolverPersist,
    ) -> AbsCtx {
        let pred_atoms = preds
            .indices()
            .map(|i| translate::atom_of_pred(preds.pred(i), &mut pre).ok())
            .collect();
        let solver = SharedSolver::with_budget_and_seed(cache.is_enabled(), budget, solver_persist);
        AbsCtx {
            cfa,
            preds,
            solver,
            cache,
            pred_atoms,
            assign_cache: ShardedMap::new(),
            assume_cache: ShardedMap::new(),
            context_cache: ShardedMap::new(),
            solver_persist: solver_persist.clone(),
        }
    }

    /// The predicate set.
    pub fn preds(&self) -> &PredSet {
        &self.preds
    }

    /// The CFA.
    pub fn cfa(&self) -> &Cfa {
        &self.cfa
    }

    /// Number of SMT queries issued so far (for stats/benches):
    /// formula-level solver queries plus atom-level entailment/sat
    /// queries routed through the shared cache.
    pub fn num_queries(&self) -> u64 {
        self.solver.num_queries() + self.cache.counters().queries
    }

    /// Counter snapshot of this context's solver handle.
    pub fn solver_counters(&self) -> circ_stats::SolverCounters {
        self.solver.counters()
    }

    /// The shared atom-level cache handle.
    pub fn cache(&self) -> &AbsCache {
        &self.cache
    }

    /// The abstraction of the initial state (all variables zero):
    /// every predicate is decided exactly by evaluation.
    pub fn initial_cube(&self) -> Cube {
        let mut c = Cube::top(self.preds.len());
        for i in self.preds.indices() {
            // Refinement never mines nondet into predicates, so eval
            // on the all-zero state decides each one; if a nondet pred
            // ever appeared, leaving it undecided (top) stays sound.
            if let Some(val) = self.preds.pred(i).eval(&|_| 0) {
                c.set(i, val);
            }
        }
        c
    }

    /// The conjunction of a cube's literals as pre-state atoms
    /// (predicates outside the linear fragment are skipped — a sound
    /// weakening).
    pub fn cube_atoms(&self, cube: &Cube) -> Vec<Atom> {
        let mut out = Vec::new();
        for (i, v) in cube.literals() {
            if let Some(a) = &self.pred_atoms[i.index()] {
                out.push(if v { a.clone() } else { a.negate() });
            }
        }
        out
    }

    /// Is the cube satisfiable?
    pub fn cube_sat(&self, cube: &Cube) -> bool {
        self.cache.is_sat_conj(&self.cube_atoms(cube))
    }

    /// Abstract post for a main-thread edge; `None` when the edge is
    /// not enabled from the cube (assume guard unsatisfiable).
    pub fn post_edge(&self, cube: &Cube, edge_id: EdgeId) -> Option<Cube> {
        let edge = self.cfa.edge(edge_id).clone();
        match &edge.op {
            Op::Assign(x, e) => {
                let (result, _) = self
                    .assign_cache
                    .get_or_compute((cube.clone(), edge_id), || self.post_assign(cube, *x, e));
                Some(result)
            }
            Op::Assume(b) => {
                let (result, _) = self
                    .assume_cache
                    .get_or_compute((cube.clone(), edge_id), || self.post_assume(cube, b));
                result
            }
        }
    }

    /// Cartesian abstract strongest post of `x := e`.
    fn post_assign(&self, cube: &Cube, x: Var, e: &Expr) -> Cube {
        let mut premises = self.cube_atoms(cube);
        // Tie the post-state copy of x to e when e is deterministic
        // and linear; otherwise leave x′ unconstrained (sound).
        let rhs = if e.has_nondet() { None } else { translate::lin_of_expr(e, &mut pre).ok() };
        if let Some(rhs) = rhs {
            premises.push(Atom::eq(LinExpr::var(post(x)) - rhs));
        }
        let mut out = Cube::top(self.preds.len());
        for i in self.preds.indices() {
            if !self.preds.mentions(i, x) {
                // Untouched predicate: frame rule for decided ones;
                // undecided ones may still follow from the *pre* facts
                // (cubes are not deductively closed), so ask.
                if let Some(v) = cube.get(i) {
                    out.set(i, v);
                    continue;
                }
                if let Some(p_atom) = &self.pred_atoms[i.index()] {
                    if self.cache.entails(&premises, p_atom) {
                        out.set(i, true);
                    } else if self.cache.entails(&premises, &p_atom.negate()) {
                        out.set(i, false);
                    }
                }
                continue;
            }
            // Translate p with x ↦ x′.
            let Ok(p_atom) = translate::atom_of_pred(self.preds.pred(i), &mut |v| {
                if v == x {
                    post(v)
                } else {
                    pre(v)
                }
            }) else {
                continue;
            };
            if self.cache.entails(&premises, &p_atom) {
                out.set(i, true);
            } else if self.cache.entails(&premises, &p_atom.negate()) {
                out.set(i, false);
            }
        }
        out
    }

    /// Cartesian abstract post of `assume b`; `None` if blocked.
    fn post_assume(&self, cube: &Cube, b: &BoolExpr) -> Option<Cube> {
        let cube_f = Formula::conj(self.cube_atoms(cube).into_iter().map(Formula::atom));
        // Frontends keep assume guards linear and deterministic, but a
        // guard outside that fragment must not abort the analysis:
        // treat it as `true` (the edge stays enabled and decides no
        // predicates), a sound over-approximation.
        let guard = translate::formula_of_bool(b, &mut pre).unwrap_or_else(|_| Formula::tru());
        let pre_f = cube_f.and(guard);
        if !self.solver.is_sat(&pre_f) {
            return None;
        }
        let mut out = Cube::top(self.preds.len());
        for i in self.preds.indices() {
            if let Some(v) = cube.get(i) {
                // Already decided; assumes never change data.
                out.set(i, v);
                continue;
            }
            let Some(p_atom) = self.pred_atoms[i.index()].clone() else {
                continue;
            };
            if self.solver.entails(&pre_f, &Formula::atom(p_atom.clone())) {
                out.set(i, true);
            } else if self.solver.entails(&pre_f, &Formula::atom(p_atom.negate())) {
                out.set(i, false);
            }
        }
        Some(out)
    }

    /// Abstract post of a context move: havoc `Y`, land in a location
    /// labeled `target`. Returns the (possibly several) successor
    /// cubes — one per satisfiable meet with a target cube.
    pub fn post_context(&self, cube: &Cube, havoc: &BTreeSet<Var>, target: &Region) -> Vec<Cube> {
        let key = (cube.clone(), havoc.clone(), target.clone());
        let (out, _) = self.context_cache.get_or_compute(key, || {
            let projected =
                cube.project(&|i| !self.preds.pred_vars(i).iter().any(|v| havoc.contains(v)));
            let mut out = Vec::new();
            for t in target.cubes() {
                let t = t.widen_to(self.preds.len());
                if let Some(m) = projected.meet(&t) {
                    if self.cube_sat(&m) && !out.contains(&m) {
                        out.push(m);
                    }
                }
            }
            out
        });
        out
    }

    /// Does the cube (as a state set) entail predicate `i`?
    pub fn cube_entails(&self, cube: &Cube, i: PredIx) -> bool {
        match &self.pred_atoms[i.index()] {
            Some(a) => self.cache.entails(&self.cube_atoms(cube), a),
            None => false,
        }
    }

    /// The cube as a formula over pre-state solver variables.
    pub fn cube_formula(&self, cube: &Cube) -> Formula {
        Formula::conj(self.cube_atoms(cube).into_iter().map(Formula::atom))
    }

    /// The region (union of cubes) as a formula.
    pub fn region_formula(&self, region: &Region) -> Formula {
        Formula::disj(region.cubes().iter().map(|c| self.cube_formula(c)))
    }

    /// Semantic region containment `a ⊆ b` (an SMT validity check,
    /// complete where the syntactic cube subsumption of
    /// [`Region::contained_in`] is only sufficient).
    pub fn region_contained(&self, a: &Region, b: &Region) -> bool {
        if a.contained_in(b) {
            return true; // fast syntactic path
        }
        // The conclusion side must translate exactly, or the
        // entailment check would be unsound; fall back to the (already
        // failed) syntactic answer in that case.
        let b_exact = b
            .cubes()
            .iter()
            .all(|c| c.literals().all(|(i, _)| self.pred_atoms[i.index()].is_some()));
        if !b_exact {
            return false;
        }
        let fa = self.region_formula(a);
        let fb = self.region_formula(b);
        self.solver.entails(&fa, &fb)
    }
}

impl std::fmt::Debug for AbsCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AbsCtx")
            .field("preds", &self.preds.len())
            .field("queries", &self.solver.num_queries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::{figure1_cfa, Pred};

    /// Figure-1 CFA with the paper's four discovered predicates.
    fn fig1_ctx() -> (Arc<Cfa>, AbsCtx) {
        let cfa = Arc::new(figure1_cfa());
        let x = cfa.var_by_name("x").unwrap();
        let _ = x;
        let state = cfa.var_by_name("state").unwrap();
        let old = cfa.var_by_name("old").unwrap();
        let preds = PredSet::from_preds(
            &cfa,
            [
                Pred::eq(Expr::var(old), Expr::var(state)), // p0: old = state
                Pred::eq(Expr::var(old), Expr::int(0)),     // p1: old = 0
                Pred::eq(Expr::var(state), Expr::int(0)),   // p2: state = 0
                Pred::eq(Expr::var(state), Expr::int(1)),   // p3: state = 1
            ],
        );
        let ctx = AbsCtx::new(Arc::clone(&cfa), preds);
        (cfa, ctx)
    }

    fn p(i: u32) -> PredIx {
        PredIx(i)
    }

    #[test]
    fn initial_cube_exact_on_zeros() {
        let (_, ctx) = fig1_ctx();
        let c = ctx.initial_cube();
        // zeros: old = state ✓, old = 0 ✓, state = 0 ✓, state = 1 ✗
        assert_eq!(c.get(p(0)), Some(true));
        assert_eq!(c.get(p(1)), Some(true));
        assert_eq!(c.get(p(2)), Some(true));
        assert_eq!(c.get(p(3)), Some(false));
        assert!(ctx.cube_sat(&c));
    }

    #[test]
    fn post_assign_old_from_state() {
        // From `true`, old := state decides old = state (and the
        // relational consequence is available later).
        let (cfa, ctx) = fig1_ctx();
        let top = Cube::top(4);
        // edge 0 is 1 -> 2 : old := state
        let e0 = cfa.out_edges(cfa.entry())[0];
        let post = ctx.post_edge(&top, e0).unwrap();
        assert_eq!(post.get(p(0)), Some(true), "old = state must hold");
        assert_eq!(post.get(p(1)), None, "old = 0 unknown");
    }

    #[test]
    fn post_assume_derives_relational_facts() {
        // cube: old = state; assume [state = 0] ⇒ old = 0 derived.
        let (cfa, ctx) = fig1_ctx();
        let cube = Cube::top(4).with(p(0), true);
        // find the edge with op [state = 0]
        let guard_edge = cfa
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| matches!(&e.op, Op::Assume(b) if format!("{b}").contains("= 0")))
            .map(|(i, _)| EdgeId::from_raw(i as u32))
            .unwrap();
        let post = ctx.post_edge(&cube, guard_edge).unwrap();
        assert_eq!(post.get(p(2)), Some(true), "state = 0 assumed");
        assert_eq!(post.get(p(1)), Some(true), "old = 0 follows from old = state ∧ state = 0");
    }

    #[test]
    fn post_assume_blocks_on_contradiction() {
        // cube: state = 1; assume [state = 0] is disabled.
        let (cfa, ctx) = fig1_ctx();
        let cube = Cube::top(4).with(p(3), true).with(p(2), false);
        let guard_edge = cfa
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| matches!(&e.op, Op::Assume(b) if format!("{b}") == "v1 = 0"))
            .map(|(i, _)| EdgeId::from_raw(i as u32))
            .unwrap();
        assert_eq!(ctx.post_edge(&cube, guard_edge), None);
    }

    #[test]
    fn post_assign_constant_decides_everything() {
        // state := 1 from any cube decides state = 1 and ¬(state = 0),
        // and old = state becomes whatever old was... unknown here.
        let (cfa, ctx) = fig1_ctx();
        let top = Cube::top(4);
        let e = cfa
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| matches!(&e.op, Op::Assign(_, Expr::Int(1))))
            .map(|(i, _)| EdgeId::from_raw(i as u32))
            .unwrap();
        let post = ctx.post_edge(&top, e).unwrap();
        assert_eq!(post.get(p(3)), Some(true));
        assert_eq!(post.get(p(2)), Some(false));
        assert_eq!(post.get(p(0)), None);
    }

    #[test]
    fn post_assign_tracks_relation_through_update() {
        // cube: old = state ∧ state = 0; state := 1 ⇒ old = 0,
        // state = 1, ¬(state = 0), ¬(old = state).
        let (cfa, ctx) = fig1_ctx();
        let cube = Cube::top(4).with(p(0), true).with(p(2), true);
        let e = cfa
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| matches!(&e.op, Op::Assign(_, Expr::Int(1))))
            .map(|(i, _)| EdgeId::from_raw(i as u32))
            .unwrap();
        let post = ctx.post_edge(&cube, e).unwrap();
        assert_eq!(post.get(p(1)), Some(true), "old = 0 survives the state update");
        assert_eq!(post.get(p(3)), Some(true));
        assert_eq!(post.get(p(2)), Some(false));
        assert_eq!(post.get(p(0)), Some(false), "old = 0 ∧ state = 1 ⇒ old ≠ state");
    }

    #[test]
    fn post_context_havoc_drops_and_meets() {
        let (_, ctx) = fig1_ctx();
        let cfa = ctx.cfa().clone();
        let state = cfa.var_by_name("state").unwrap();
        // cube: state = 0 ∧ old = 0; context havocs state into a
        // location labeled state = 1.
        let cube = Cube::top(4).with(p(2), true).with(p(1), true);
        let target = Region::of_cube(Cube::top(4).with(p(3), true));
        let havoc: BTreeSet<Var> = [state].into();
        let out = ctx.post_context(&cube, &havoc, &target);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert_eq!(c.get(p(1)), Some(true), "old = 0 survives (old not havocked)");
        assert_eq!(c.get(p(3)), Some(true), "target label state = 1 imposed");
        assert_eq!(c.get(p(2)), None, "state = 0 dropped by havoc");
        assert_eq!(c.get(p(0)), None, "old = state dropped (mentions state)");
    }

    #[test]
    fn post_context_discards_contradictory_meets() {
        let (_, ctx) = fig1_ctx();
        // cube asserts state = 1 and target insists state = 1 is
        // false, havocking nothing: contradictory meet discarded.
        let cube = Cube::top(4).with(p(3), true);
        let target = Region::of_cube(Cube::top(4).with(p(3), false));
        let out = ctx.post_context(&cube, &BTreeSet::new(), &target);
        assert!(out.is_empty());
    }

    #[test]
    fn post_context_semantic_contradiction_filtered() {
        let (_, ctx) = fig1_ctx();
        // cube: state = 0 (p2 true); target label: state = 1 (p3
        // true); no havoc. Syntactic meet succeeds (different
        // predicates) but the SAT filter kills it.
        let cube = Cube::top(4).with(p(2), true);
        let target = Region::of_cube(Cube::top(4).with(p(3), true));
        let out = ctx.post_context(&cube, &BTreeSet::new(), &target);
        assert!(out.is_empty(), "state = 0 ∧ state = 1 must be filtered semantically");
    }

    #[test]
    fn nondet_assignment_leaves_pred_unknown() {
        let mut b = circ_ir::CfaBuilder::new("t");
        let g = b.global("g");
        let l1 = b.fresh_loc();
        b.edge(b.entry(), Op::assign(g, Expr::Nondet), l1);
        let cfa = Arc::new(b.build());
        let preds = PredSet::from_preds(&cfa, [Pred::eq(Expr::var(g), Expr::int(0))]);
        let ctx = AbsCtx::new(Arc::clone(&cfa), preds);
        let init = ctx.initial_cube();
        assert_eq!(init.get(p(0)), Some(true));
        let post = ctx.post_edge(&init, EdgeId::from_raw(0)).unwrap();
        assert_eq!(post.get(p(0)), None, "nondet write forgets g = 0");
    }

    #[test]
    fn shared_cache_carries_across_contexts() {
        let (cfa, ctx1) = fig1_ctx();
        let cache = ctx1.cache().clone();
        let top = Cube::top(4);
        let e0 = cfa.out_edges(cfa.entry())[0];
        let a = ctx1.post_edge(&top, e0);
        let after_first = cache.counters();
        assert!(after_first.cache_misses > 0);
        // A brand-new context over the same predicates re-asks the
        // same atom-level questions; the shared cache answers them all.
        let ctx2 = AbsCtx::with_cache(Arc::clone(&cfa), ctx1.preds().clone(), cache.clone());
        let b = ctx2.post_edge(&top, e0);
        assert_eq!(a, b);
        let delta = cache.counters().since(&after_first);
        assert_eq!(delta.cache_misses, 0, "every atom query must hit the shared cache");
        assert!(delta.cache_hits > 0);
    }

    #[test]
    fn caching_stable_results() {
        let (cfa, ctx) = fig1_ctx();
        let top = Cube::top(4);
        let e0 = cfa.out_edges(cfa.entry())[0];
        let a = ctx.post_edge(&top, e0);
        let q1 = ctx.num_queries();
        let b = ctx.post_edge(&top, e0);
        assert_eq!(a, b);
        assert_eq!(ctx.num_queries(), q1, "second call must hit the cache");
    }
}
