//! Disk persistence for the abstraction-layer entailment cache.
//!
//! Reuses the wire helpers and checksummed file envelope of
//! [`circ_smt::persist`]; see that module for the format and the
//! corruption-rejection guarantees. One line per entry:
//!
//! ```text
//! E <n> <atom>*n <goal-atom> <0|1>     entailment: premises ⊨ goal?
//! S <n> <atom>*n <0|1>                 conjunction satisfiable?
//! ```
//!
//! Cross-process reuse is sound because the keys are *canonical LIA
//! atoms over a numbering fixed by the program text*: solver variables
//! come from CFA variable indices (`pre(v) = 2i`, `post(v) = 2i + 1`),
//! premises are sorted/deduped/sign-normalized, and the atom
//! constructors normalize on construction. The same logical question
//! asked by any later process — even after predicate regrowth renumbers
//! every predicate — rebuilds the identical key (see
//! [`crate::cache`]).

use crate::cache::AbsSeed;
use circ_smt::persist::{
    fnv1a64, parse_atom, parse_cache_file, push_atom, render_cache_file, Tokens,
};
use circ_smt::{Atom, PersistError};
use std::io;
use std::path::Path;

const ABS_KIND: &str = "circ-abs-cache";

/// Upper bound on premises per entry accepted by the parser (a
/// hostile-input guard; real premise lists are tiny).
const MAX_PREMISES: usize = 1_000_000;

fn push_bool(out: &mut String, b: bool) {
    out.push(if b { '1' } else { '0' });
}

fn parse_bool(toks: &mut Tokens<'_>) -> Result<bool, PersistError> {
    match toks.next()? {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(PersistError::Format(format!("bad boolean token {other:?}"))),
    }
}

fn parse_premises(toks: &mut Tokens<'_>) -> Result<Vec<Atom>, PersistError> {
    let n: usize = toks.next_int()?;
    if n > MAX_PREMISES {
        return Err(PersistError::Format("premise count out of range".into()));
    }
    let mut premises = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        premises.push(parse_atom(toks)?);
    }
    Ok(premises)
}

/// Serializes a seed to the versioned wire format.
pub fn render_abs_cache(seed: &AbsSeed) -> String {
    let mut lines = Vec::with_capacity(seed.entails_entries().len() + seed.sat_entries().len());
    for ((premises, goal), result) in seed.entails_entries() {
        let mut line = String::from("E ");
        line.push_str(&premises.len().to_string());
        for a in premises {
            line.push(' ');
            push_atom(&mut line, a);
        }
        line.push(' ');
        push_atom(&mut line, goal);
        line.push(' ');
        push_bool(&mut line, *result);
        lines.push(line);
    }
    for (atoms, result) in seed.sat_entries() {
        let mut line = String::from("S ");
        line.push_str(&atoms.len().to_string());
        for a in atoms {
            line.push(' ');
            push_atom(&mut line, a);
        }
        line.push(' ');
        push_bool(&mut line, *result);
        lines.push(line);
    }
    render_cache_file(ABS_KIND, lines)
}

/// Parses a cache file rendered by [`render_abs_cache`].
pub fn parse_abs_cache(text: &str) -> Result<AbsSeed, PersistError> {
    let lines = parse_cache_file(ABS_KIND, text)?;
    let mut entails = Vec::new();
    let mut sat = Vec::new();
    for line in lines {
        let mut toks = Tokens::new(line);
        match toks.next()? {
            "E" => {
                let premises = parse_premises(&mut toks)?;
                let goal = parse_atom(&mut toks)?;
                let result = parse_bool(&mut toks)?;
                entails.push(((premises, goal), result));
            }
            "S" => {
                let atoms = parse_premises(&mut toks)?;
                let result = parse_bool(&mut toks)?;
                sat.push((atoms, result));
            }
            other => return Err(PersistError::Format(format!("bad entry tag {other:?}"))),
        }
        toks.finish()?;
    }
    Ok(AbsSeed::from_entries(entails, sat))
}

/// Loads an entailment-cache file. A missing file is `Ok(None)` (a
/// fresh cache dir is not an anomaly); anything else unreadable or
/// invalid is an error for the caller to log before cold-starting.
pub fn load_abs_cache(path: &Path) -> Result<Option<AbsSeed>, PersistError> {
    load_abs_cache_in(&circ_store::Store::real(), path)
}

/// [`load_abs_cache`] through an explicit storage handle, so torture
/// runs can fail or truncate the read deterministically.
pub fn load_abs_cache_in(
    store: &circ_store::Store,
    path: &Path,
) -> Result<Option<AbsSeed>, PersistError> {
    let text = match store.read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::Io(e)),
    };
    parse_abs_cache(&text).map(Some)
}

/// Saves a seed to `path` (durable atomic write).
pub fn save_abs_cache(path: &Path, seed: &AbsSeed) -> io::Result<()> {
    save_abs_cache_in(&circ_store::Store::real(), path, seed)
}

/// [`save_abs_cache`] through an explicit storage handle.
pub fn save_abs_cache_in(store: &circ_store::Store, path: &Path, seed: &AbsSeed) -> io::Result<()> {
    store.write_atomic(path, &render_abs_cache(seed))
}

/// A stable fingerprint of a rendered seed, used by benches to assert
/// that two runs saved identical caches.
pub fn abs_cache_fingerprint(seed: &AbsSeed) -> u64 {
    fnv1a64(render_abs_cache(seed).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::AbsCache;
    use circ_smt::{LinExpr, SVar};
    use std::fs;

    fn x() -> LinExpr {
        LinExpr::var(SVar(0))
    }
    fn y() -> LinExpr {
        LinExpr::var(SVar(5))
    }

    fn populated_cache() -> AbsCache {
        let cache = AbsCache::new();
        let premises = [Atom::eq(x()), Atom::le(y() - LinExpr::constant(3))];
        cache.entails(&premises, &Atom::le(y() - LinExpr::constant(9)));
        cache.entails(&premises, &Atom::eq(y()));
        cache.is_sat_conj(&premises);
        cache.is_sat_conj(&[Atom::eq(x() - LinExpr::constant(1)), Atom::eq(-x())]);
        cache
    }

    #[test]
    fn wire_round_trip_preserves_every_entry() {
        let seed = populated_cache().snapshot();
        let text = render_abs_cache(&seed);
        let back = parse_abs_cache(&text).unwrap();
        assert_eq!(seed.entails_entries(), back.entails_entries());
        assert_eq!(seed.sat_entries(), back.sat_entries());
        // Canonical rendering: save(load(save(x))) == save(x).
        assert_eq!(render_abs_cache(&back), text);
    }

    #[test]
    fn round_tripped_seed_turns_misses_into_hits() {
        let cold = populated_cache();
        let text = render_abs_cache(&cold.snapshot());
        let warm = AbsCache::with_seed(&parse_abs_cache(&text).unwrap());

        let premises = [Atom::eq(x()), Atom::le(y() - LinExpr::constant(3))];
        assert!(warm.entails(&premises, &Atom::le(y() - LinExpr::constant(9))));
        assert!(!warm.entails(&premises, &Atom::eq(y())));
        assert!(warm.is_sat_conj(&premises));
        let c = warm.counters();
        assert_eq!(c.cache_hits, 3);
        assert_eq!(c.cache_misses, 0);
    }

    #[test]
    fn every_bit_flip_and_truncation_is_rejected() {
        let text = render_abs_cache(&populated_cache().snapshot());
        let bytes = text.as_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.to_vec();
            mutated[i] ^= 0x01;
            let Ok(s) = String::from_utf8(mutated) else { continue };
            assert!(parse_abs_cache(&s).is_err(), "flip at byte {i} accepted");
        }
        for i in 0..text.len() {
            if !text.is_char_boundary(i) {
                continue;
            }
            assert!(parse_abs_cache(&text[..i]).is_err(), "prefix of {i} bytes accepted");
        }
        assert!(parse_abs_cache(&text.replace("format=1", "format=2")).is_err());
        assert!(parse_abs_cache(&text.replace("atoms=1", "atoms=2")).is_err());
    }

    #[test]
    fn missing_file_is_a_clean_miss() {
        let path = std::env::temp_dir().join("circ_abs_cache_does_not_exist.cache");
        let _ = fs::remove_file(&path);
        assert!(load_abs_cache(&path).unwrap().is_none());
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let path = std::env::temp_dir().join("circ_persist_unit_abs.cache");
        let _ = fs::remove_file(&path);
        let seed = populated_cache().snapshot();
        save_abs_cache(&path, &seed).unwrap();
        let loaded = load_abs_cache(&path).unwrap().unwrap();
        assert_eq!(seed.entails_entries(), loaded.entails_entries());
        assert_eq!(abs_cache_fingerprint(&seed), abs_cache_fingerprint(&loaded));
        let _ = fs::remove_file(&path);
    }
}
