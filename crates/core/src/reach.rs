//! `ReachAndBuild` (Algorithm 1): worklist reachability over the
//! abstract multithreaded program `((C, P), (A, k))`, checking for
//! race states and simultaneously constructing the abstract
//! reachability graph.

use crate::abs::AbsCtx;
use crate::arg::{Arg, StateEdgeKind};
use circ_acfa::{Acfa, AcfaLocId, CVal, ContextState, Cube};
use circ_governor::{Budget, Exhausted};
use circ_ir::{EdgeId, Loc, MtProgram};
use circ_par::Pool;
use std::collections::HashMap;

/// Approximate bytes one committed ARG state costs: the `AbsState`
/// itself plus hash-map/vector bookkeeping. Coarse by design — the
/// memory ceiling governs growth, it does not model the allocator.
fn state_bytes(s: &AbsState) -> u64 {
    const OVERHEAD: u64 = 96;
    std::mem::size_of::<AbsState>() as u64 + (s.cube.width() as u64) / 4 + OVERHEAD
}

/// An abstract program state: main-thread location and cube, plus the
/// counter-abstracted context.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AbsState {
    /// Main thread control location.
    pub pc: Loc,
    /// Main thread data cube.
    pub cube: Cube,
    /// Context counters.
    pub ctx: ContextState,
}

/// One step of an abstract error trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// The main thread takes a CFA edge.
    Main(EdgeId),
    /// A context thread at the given ACFA location takes the ACFA
    /// edge with the given index (into [`Acfa::edges`]).
    Ctx {
        /// Source abstract location.
        src: AcfaLocId,
        /// Index into the ACFA's edge table.
        edge_ix: usize,
    },
}

/// Which safety property a run checks. The paper's focus is race
/// freedom (§4.1), but the method applies to any safety property
/// (§1); assertion reachability is the natural second instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Property {
    /// No data race on the program's race variable.
    #[default]
    Race,
    /// No thread reaches an error location (a failed `assert`).
    Assertions,
}

/// How the abstract race manifests (§4.1, specialized to a symmetric
/// program: the context never reads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstractRace {
    /// The main thread has an enabled access and a context thread an
    /// enabled write.
    MainAndContext {
        /// Whether the main thread's access is a write.
        main_writes: bool,
        /// The context location with the enabled write.
        ctx_loc: AcfaLocId,
    },
    /// Two context threads have enabled writes.
    TwoContexts {
        /// A location with an enabled write.
        first: AcfaLocId,
        /// A second such location (may equal `first` when its counter
        /// is at least two).
        second: AcfaLocId,
    },
}

/// The violation found at the end of an abstract trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstractError {
    /// A race state (§4.1).
    Race(AbstractRace),
    /// The main thread reached an error location.
    Assertion,
}

/// An abstract counterexample: the error state and the interleaved
/// abstract trace reaching it.
#[derive(Debug, Clone)]
pub struct AbstractCex {
    /// `(state before the step, the step)` in execution order.
    pub steps: Vec<(AbsState, TraceOp)>,
    /// The error state reached.
    pub final_state: AbsState,
    /// What was violated.
    pub error: AbstractError,
}

/// Why `ReachAndBuild` did not return an ARG.
#[derive(Debug, Clone)]
pub enum ReachError {
    /// A reachable abstract race state (Algorithm 1's exception).
    Race(Box<AbstractCex>),
    /// Exceeded the state budget.
    StateLimit(usize),
    /// The run's resource budget (deadline, memory ceiling, or
    /// cancellation) was exhausted mid-search.
    Budget(Exhausted),
}

/// Runs abstract reachability of the main thread against the context
/// `(acfa, k)` with `init` threads at the context's start location
/// (`ω` for CIRC, `Fin(k)` for the ω-CIRC optimization). On success
/// returns the ARG; on a reachable race, the abstract counterexample.
///
/// The worklist is processed in batches: each batch is the current
/// BFS frontier, whose states are expanded concurrently on `pool`
/// (abstract posts are the expensive part and are independent per
/// state), and the results are then committed *sequentially in batch
/// order*. Because the commit phase replays, per state, exactly the
/// sequential algorithm's steps — error check, state-budget check,
/// then successor insertion in edge order — the returned ARG, the
/// state numbering, and any counterexample trace are bit-identical to
/// the `jobs = 1` run, and batch-then-append preserves the FIFO
/// dequeue order of the sequential worklist.
///
/// The resource budget is polled once per committed frontier state
/// (the sequential phase, so the poll count is identical at every
/// `jobs` setting) and each inserted state's approximate size is
/// charged against the memory ceiling.
///
/// # Errors
///
/// [`ReachError::Race`] carries the abstract trace;
/// [`ReachError::StateLimit`] reports the budget;
/// [`ReachError::Budget`] reports deadline/memory/cancellation
/// exhaustion.
#[allow(clippy::too_many_arguments)]
pub fn reach_and_build(
    abs: &AbsCtx,
    program: &MtProgram,
    acfa: &Acfa,
    k: u32,
    init: CVal,
    max_states: usize,
    property: Property,
    pool: &Pool,
    budget: &Budget,
) -> Result<Arg, ReachError> {
    let cfa = program.cfa_arc();
    let x = program.race_var();

    let init_state = AbsState {
        pc: cfa.entry(),
        cube: abs.initial_cube(),
        ctx: ContextState::initial(acfa, init),
    };

    let mut arg = Arg::new();
    arg.set_entry(&cfa, (init_state.pc, init_state.cube.clone()));

    let mut states: Vec<AbsState> = vec![init_state.clone()];
    let mut index: HashMap<AbsState, usize> = HashMap::new();
    index.insert(init_state, 0);
    let mut parent: Vec<Option<(usize, TraceOp)>> = vec![None];
    let mut frontier: Vec<usize> = vec![0];

    // Frontiers are expanded in fixed-size chunks rather than whole:
    // expansion is the unpolled parallel phase, so chunking bounds how
    // long the run can outlive its deadline by one chunk's expansion
    // time instead of one full BFS level's. Chunk boundaries don't
    // affect determinism — expansion only reads pre-existing states
    // and the memoizing `AbsCtx`, and commits replay in frontier
    // order either way.
    const EXPANSION_CHUNK: usize = 256;

    while !frontier.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for chunk in frontier.chunks(EXPANSION_CHUNK) {
            // Phase 1 — parallel: expand the chunk's states against
            // the shared abstraction context. Expansion is pure
            // relative to the traversal bookkeeping (it only reads
            // `states` and the memoizing `AbsCtx`), so any schedule
            // computes the same expansions; `Pool::map` returns them
            // in frontier order.
            let expansions: Vec<Expansion> = pool
                .map(chunk, |&six| expand_state(abs, program, acfa, k, property, x, &states[six]));

            // Phase 2 — sequential commit in batch order, replaying
            // the sequential loop step for step.
            for (exp, &six) in expansions.iter().zip(chunk.iter()) {
                budget.check().map_err(ReachError::Budget)?;
                let s = states[six].clone();

                // Error check on the (logically) dequeued state.
                if let Some(error) = &exp.error {
                    let steps = rebuild_trace(&states, &parent, six);
                    return Err(ReachError::Race(Box::new(AbstractCex {
                        steps,
                        final_state: s,
                        error: error.clone(),
                    })));
                }

                if states.len() >= max_states {
                    return Err(ReachError::StateLimit(max_states));
                }

                for (kind, succ, op) in &exp.succs {
                    // The ARG records every computed post edge,
                    // including re-entries into already-known states.
                    arg.connect(
                        &cfa,
                        &(s.pc, s.cube.clone()),
                        kind.clone(),
                        &(succ.pc, succ.cube.clone()),
                    );
                    if index.contains_key(succ) {
                        continue;
                    }
                    let ix = states.len();
                    budget.charge(state_bytes(succ));
                    states.push(succ.clone());
                    index.insert(succ.clone(), ix);
                    parent.push(Some((six, op.clone())));
                    next.push(ix);
                }
            }
        }
        frontier = next;
    }

    Ok(arg)
}

/// Everything `reach_and_build` needs to commit one frontier state:
/// its error verdict and its ordered successor list.
struct Expansion {
    error: Option<AbstractError>,
    succs: Vec<(StateEdgeKind, AbsState, TraceOp)>,
}

/// Expands one abstract state: error check, enabledness under the
/// atomic-scheduling rule, then abstract posts for the enabled main
/// and context moves, in the same order the sequential loop used. No
/// posts are computed for an erroring state (the sequential loop
/// returned before expanding it).
fn expand_state(
    abs: &AbsCtx,
    program: &MtProgram,
    acfa: &Acfa,
    k: u32,
    property: Property,
    x: circ_ir::Var,
    s: &AbsState,
) -> Expansion {
    let cfa = program.cfa();

    let error = match property {
        Property::Race => race_at(s, program, acfa, x).map(AbstractError::Race),
        Property::Assertions => cfa.is_error(s.pc).then_some(AbstractError::Assertion),
    };
    if error.is_some() {
        return Expansion { error, succs: Vec::new() };
    }

    // Enabled operations under the atomic-scheduling rule: collect
    // the set AL of occupied atomic locations (main's included).
    let main_atomic = cfa.is_atomic(s.pc);
    let ctx_atomic: Vec<AcfaLocId> = s.ctx.atomic_occupied(acfa).collect();
    let al_count = ctx_atomic.len() + usize::from(main_atomic);
    let (main_enabled, ctx_enabled_locs): (bool, Vec<AcfaLocId>) = match al_count {
        0 => (true, s.ctx.occupied().collect()),
        1 if main_atomic => (true, Vec::new()),
        1 => (false, ctx_atomic),
        _ => (false, Vec::new()),
    };

    let mut succs: Vec<(StateEdgeKind, AbsState, TraceOp)> = Vec::new();
    if main_enabled {
        for &eid in cfa.out_edges(s.pc) {
            if let Some(cube2) = abs.post_edge(&s.cube, eid) {
                let dst = cfa.edge(eid).dst;
                succs.push((
                    StateEdgeKind::MainOp(eid),
                    AbsState { pc: dst, cube: cube2, ctx: s.ctx.clone() },
                    TraceOp::Main(eid),
                ));
            }
        }
    }
    for n in ctx_enabled_locs {
        for (eix, edge) in acfa.edges().iter().enumerate().filter(|(_, e)| e.src == n) {
            // The successor cube conjoins the *target* location's
            // label (the `sp` of §3.3). We deliberately do not
            // conjoin the labels of the other occupied locations:
            // during inference those labels are unproven
            // assumptions, and pruning on them can silently
            // suppress exactly the context behaviors the guarantee
            // check would need to see (a self-fulfilling context).
            // Target-only conjunction is the conservative reading.
            let cubes = abs.post_context(&s.cube, &edge.havoc, acfa.region(edge.dst));
            let ctx2 = s.ctx.step(n, edge.dst, k);
            for cube2 in cubes {
                succs.push((
                    StateEdgeKind::Context(edge.havoc.clone()),
                    AbsState { pc: s.pc, cube: cube2, ctx: ctx2.clone() },
                    TraceOp::Ctx { src: n, edge_ix: eix },
                ));
            }
        }
    }
    Expansion { error, succs }
}

/// The race condition of §4.1 on one abstract state.
fn race_at(
    s: &AbsState,
    program: &MtProgram,
    acfa: &Acfa,
    x: circ_ir::Var,
) -> Option<AbstractRace> {
    let cfa = program.cfa();
    if cfa.is_atomic(s.pc) || s.ctx.atomic_occupied(acfa).next().is_some() {
        return None;
    }
    let writers: Vec<AcfaLocId> = s.ctx.occupied().filter(|n| acfa.writes_at(*n, x)).collect();
    // Two context writers: two distinct write-capable locations, or
    // one such location holding at least two threads.
    if writers.len() >= 2 {
        return Some(AbstractRace::TwoContexts { first: writers[0], second: writers[1] });
    }
    if let Some(&n) = writers.first() {
        if s.ctx.count(n).at_least(2) {
            return Some(AbstractRace::TwoContexts { first: n, second: n });
        }
        let main_writes = cfa.writes_at(s.pc).contains(&x);
        let main_reads = cfa.reads_at(s.pc).contains(&x);
        if main_writes || main_reads {
            return Some(AbstractRace::MainAndContext { main_writes, ctx_loc: n });
        }
    }
    None
}

fn rebuild_trace(
    states: &[AbsState],
    parent: &[Option<(usize, TraceOp)>],
    mut ix: usize,
) -> Vec<(AbsState, TraceOp)> {
    let mut rev = Vec::new();
    while let Some((p, op)) = &parent[ix] {
        rev.push((states[*p].clone(), op.clone()));
        ix = *p;
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abs::AbsCtx;
    use crate::preds::PredSet;
    use circ_acfa::AcfaEdge;
    use circ_acfa::Region;
    use circ_ir::{figure1_cfa, Expr, Pred};
    use std::collections::BTreeSet;

    fn fig1_program() -> MtProgram {
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        MtProgram::new(cfa, x)
    }

    #[test]
    fn empty_context_is_race_free() {
        // With the do-nothing context, a single thread cannot race.
        let program = fig1_program();
        let abs = AbsCtx::new(program.cfa_arc(), PredSet::new());
        let acfa = Acfa::empty(0);
        let result = reach_and_build(
            &abs,
            &program,
            &acfa,
            1,
            CVal::Omega,
            10_000,
            Property::Race,
            &Pool::sequential(),
            &Budget::unlimited(),
        );
        let arg = result.expect("no race without a context");
        assert!(arg.num_locs() >= 1);
    }

    /// A context that may write `x` from its start location — every
    /// state with the main thread near `x` becomes a race.
    fn writer_context(program: &MtProgram) -> Acfa {
        let x = program.race_var();
        Acfa::from_parts(
            vec![Region::full(0); 2],
            vec![false, false],
            vec![AcfaEdge { src: AcfaLocId(0), havoc: [x].into(), dst: AcfaLocId(1) }],
        )
    }

    #[test]
    fn writer_context_produces_race_trace() {
        let program = fig1_program();
        let abs = AbsCtx::new(program.cfa_arc(), PredSet::new());
        let acfa = writer_context(&program);
        let result = reach_and_build(
            &abs,
            &program,
            &acfa,
            1,
            CVal::Omega,
            10_000,
            Property::Race,
            &Pool::sequential(),
            &Budget::unlimited(),
        );
        match result {
            Err(ReachError::Race(cex)) => {
                // With ω threads at the writer location, two context
                // threads race immediately: the shortest abstract
                // trace is empty (race at the initial state).
                assert!(matches!(cex.error, AbstractError::Race(AbstractRace::TwoContexts { .. })));
                assert!(cex.steps.is_empty());
            }
            other => panic!("expected race, got {other:?}"),
        }
    }

    #[test]
    fn single_writer_thread_races_with_main() {
        // One context thread (k = 1, init Fin(1)): no two-context
        // race; main must walk to an x-access location first.
        let program = fig1_program();
        let abs = AbsCtx::new(program.cfa_arc(), PredSet::new());
        let acfa = writer_context(&program);
        let result = reach_and_build(
            &abs,
            &program,
            &acfa,
            1,
            CVal::Fin(1),
            10_000,
            Property::Race,
            &Pool::sequential(),
            &Budget::unlimited(),
        );
        match result {
            Err(ReachError::Race(cex)) => {
                assert!(matches!(
                    cex.error,
                    AbstractError::Race(AbstractRace::MainAndContext { .. })
                ));
                assert!(!cex.steps.is_empty(), "main must move to reach x");
                // trace must be replayable: every step's state differs
                for w in cex.steps.windows(2) {
                    assert_ne!(w[0].0, w[1].0);
                }
            }
            other => panic!("expected race, got {other:?}"),
        }
    }

    #[test]
    fn atomic_context_location_blocks_main() {
        // Context: start -τ-> atomic location with an x-writing edge
        // back. While a context thread sits in the atomic location the
        // main thread may not move, and no race is flagged there.
        let program = fig1_program();
        let x = program.race_var();
        let acfa = Acfa::from_parts(
            vec![Region::full(0); 2],
            vec![false, true],
            vec![
                AcfaEdge { src: AcfaLocId(0), havoc: BTreeSet::new(), dst: AcfaLocId(1) },
                AcfaEdge { src: AcfaLocId(1), havoc: [x].into(), dst: AcfaLocId(0) },
            ],
        );
        let abs = AbsCtx::new(program.cfa_arc(), PredSet::new());
        // k=1 with a single context thread: the only writer is inside
        // the atomic location, so no race state is schedulable…
        let result = reach_and_build(
            &abs,
            &program,
            &acfa,
            1,
            CVal::Fin(1),
            50_000,
            Property::Race,
            &Pool::sequential(),
            &Budget::unlimited(),
        );
        assert!(result.is_ok(), "atomic write-back context cannot race with one thread");
    }

    #[test]
    fn state_limit_reported() {
        let program = fig1_program();
        let abs = AbsCtx::new(program.cfa_arc(), PredSet::new());
        let acfa = Acfa::empty(0);
        let result = reach_and_build(
            &abs,
            &program,
            &acfa,
            1,
            CVal::Omega,
            2,
            Property::Race,
            &Pool::sequential(),
            &Budget::unlimited(),
        );
        assert!(matches!(result, Err(ReachError::StateLimit(2))));
    }

    #[test]
    fn parallel_expansion_matches_sequential() {
        // The batch commit replays the sequential order, so the ARG
        // and any counterexample must be identical at every jobs
        // setting.
        let program = fig1_program();
        let acfa = writer_context(&program);
        let run = |pool: &Pool, init: CVal| {
            let abs = AbsCtx::new(program.cfa_arc(), PredSet::new());
            reach_and_build(
                &abs,
                &program,
                &acfa,
                1,
                init,
                10_000,
                Property::Race,
                pool,
                &Budget::unlimited(),
            )
        };
        for init in [CVal::Omega, CVal::Fin(1)] {
            let seq = run(&Pool::sequential(), init);
            let par = run(&Pool::new(4), init);
            assert_eq!(format!("{seq:?}"), format!("{par:?}"), "init {init:?}");
        }
    }

    #[test]
    fn predicates_prune_infeasible_branches() {
        // With the four figure-1 predicates and the empty context, the
        // reach set stays finite and never enables [old = 0] after
        // seeing state ≠ 0 in the atomic block.
        let program = fig1_program();
        let cfa = program.cfa();
        let state = cfa.var_by_name("state").unwrap();
        let old = cfa.var_by_name("old").unwrap();
        let preds = PredSet::from_preds(
            cfa,
            [
                Pred::eq(Expr::var(old), Expr::var(state)),
                Pred::eq(Expr::var(old), Expr::int(0)),
                Pred::eq(Expr::var(state), Expr::int(0)),
                Pred::eq(Expr::var(state), Expr::int(1)),
            ],
        );
        let abs = AbsCtx::new(program.cfa_arc(), preds);
        let acfa = Acfa::empty(4);
        let arg = reach_and_build(
            &abs,
            &program,
            &acfa,
            1,
            CVal::Omega,
            10_000,
            Property::Race,
            &Pool::sequential(),
            &Budget::unlimited(),
        )
        .expect("single thread is race-free");
        // the ARG covers at most one abstract state per (loc, cube)
        assert!(arg.num_locs() <= 12, "ARG stays small: got {}", arg.num_locs());
    }
}
