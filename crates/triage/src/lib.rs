//! Tiered triage for the CIRC race checker.
//!
//! Full context inference is expensive precisely where cheap analyses
//! are wrong — and cheap exactly where they are right. This crate
//! stages the check accordingly:
//!
//! * **Stage 0 (flow):** run the sound-for-safety static flow check.
//!   If the race variable draws *zero* findings, every access to it is
//!   protected by atomicity (or it is never written), so the §4.1 race
//!   condition can never hold in any reachable state of any
//!   instantiation — the variable is certified **Safe** without
//!   touching the abstraction engine.
//! * **Stage 1 (sched):** run a small, fixed budget of seeded random
//!   schedules. If one visits a state satisfying the race condition,
//!   the executed prefix is a concrete, replayable **witness**: the
//!   variable is certified **Unsafe**. The witness is re-validated by
//!   deterministic replay before the decision is returned.
//! * **Stage 2 (circ):** everything else — flow findings but no cheap
//!   witness, or a program the interpreter cannot execute — falls
//!   through to the full CIRC engine.
//!
//! Both cheap stages are *decision* procedures only in one direction:
//! stage 0 can only say Safe, stage 1 can only say Unsafe. Neither can
//! be wrong in the direction it decides (see `DESIGN.md`), so a triaged
//! corpus produces the same verdicts as a full run, minus the CIRC
//! invocations the cheap stages absorbed.
//!
//! Everything here is a pure function of the program and the
//! [`TriageConfig`]: the schedule seeds are fixed, so the decision —
//! including the witness — is deterministic and jobs-invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use circ_baselines::{flow_check, random_run};
use circ_ir::{EdgeId, Interp, MtProgram, RaceWitness, SchedChoice, ThreadId};

/// Budget of the cheap stages. The defaults are deliberately small:
/// stage 1 exists to catch shallow races (the common case in racy
/// corpora), not to compete with CIRC on depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageConfig {
    /// Thread counts to instantiate for stage-1 schedules, tried in
    /// order.
    pub thread_counts: Vec<usize>,
    /// Random schedules per thread count.
    pub runs_per_count: u64,
    /// Step budget per schedule.
    pub max_steps: usize,
    /// Base RNG seed; schedule `i` of thread count `n` uses
    /// `seed_base + n * runs_per_count + i`, so every schedule is
    /// reproducible from the config alone.
    pub seed_base: u64,
}

impl Default for TriageConfig {
    fn default() -> TriageConfig {
        TriageConfig { thread_counts: vec![2, 3], runs_per_count: 8, max_steps: 400, seed_base: 11 }
    }
}

/// A concrete race trace found by stage 1: the schedule prefix that
/// drives a fresh instantiation into a state satisfying the §4.1 race
/// condition. Replayable via [`replay_witness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageWitness {
    /// Threads in the instantiation that raced.
    pub n_threads: usize,
    /// The RNG seed that produced the schedule (for provenance; the
    /// steps alone suffice to replay).
    pub seed: u64,
    /// The executed schedule up to (not including) the race state:
    /// replaying exactly these choices from the initial state reaches
    /// it.
    pub steps: Vec<(ThreadId, EdgeId, i64)>,
}

/// The outcome of [`triage`] for one race variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriageDecision {
    /// Stage 0: the flow check drew zero findings for the race
    /// variable — certified Safe, no CIRC run needed.
    Stage0Safe,
    /// Stage 1: a bounded random schedule produced a replay-validated
    /// race witness — certified Unsafe, no CIRC run needed.
    Stage1Race(TriageWitness),
    /// Neither cheap stage could decide; the full engine must run.
    Fallthrough,
}

impl TriageDecision {
    /// Stable short name of the stage that decided (or will decide)
    /// the variable: `flow`, `sched`, or `circ`. Used in batch-report
    /// stage attribution.
    pub fn stage_name(&self) -> &'static str {
        match self {
            TriageDecision::Stage0Safe => "flow",
            TriageDecision::Stage1Race(_) => "sched",
            TriageDecision::Fallthrough => "circ",
        }
    }
}

/// Runs the staged pipeline for `program`'s race variable.
///
/// A program the interpreter diagnoses as malformed (`nondet()` in an
/// assume guard) skips stage 1 and falls through: the cheap stages
/// must never decide a program they cannot faithfully execute. A
/// stage-1 candidate whose replay fails validation (impossible for
/// `random_run` output, but checked anyway) also falls through rather
/// than risking an unsound Unsafe.
pub fn triage(program: &MtProgram, cfg: &TriageConfig) -> TriageDecision {
    // Stage 0: sound-for-safety static filter.
    if !flow_check(program.cfa()).flags(program.race_var()) {
        return TriageDecision::Stage0Safe;
    }
    // Stage 1: bounded witness search.
    for &n in &cfg.thread_counts {
        if n == 0 {
            continue;
        }
        for i in 0..cfg.runs_per_count {
            let seed = cfg.seed_base + n as u64 * cfg.runs_per_count + i;
            let run = random_run(program, n, cfg.max_steps, seed);
            if run.diagnostic.is_some() {
                // Unexecutable program: nothing stage 1 says is
                // trustworthy. Let the full engine diagnose it.
                return TriageDecision::Fallthrough;
            }
            if let Some(&pos) = run.race_positions.first() {
                let witness =
                    TriageWitness { n_threads: n, seed, steps: run.steps[..pos].to_vec() };
                if replay_witness(program, &witness).is_ok() {
                    return TriageDecision::Stage1Race(witness);
                }
                return TriageDecision::Fallthrough;
            }
        }
    }
    TriageDecision::Fallthrough
}

/// Replays a stage-1 witness from the initial state and returns the
/// race the final state exhibits. `Err` means the witness does not
/// actually demonstrate a race (a step was not enabled, or the final
/// state is race-free) — callers treat that as "no witness".
pub fn replay_witness(program: &MtProgram, w: &TriageWitness) -> Result<RaceWitness, String> {
    let interp = Interp::new(program.clone(), w.n_threads);
    if let Some(diag) = interp.malformed() {
        return Err(format!("program is malformed: {diag}"));
    }
    let mut s = interp.initial();
    for (ix, &(t, e, nondet)) in w.steps.iter().enumerate() {
        if !interp.enabled(&s).contains(&(t, e)) {
            return Err(format!("step {ix}: ({t}, edge {e:?}) is not enabled"));
        }
        s = interp.step(&s, SchedChoice { thread: t, edge: e, nondet });
    }
    interp.race(&s).ok_or_else(|| "final state exhibits no race".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use circ_ir::{figure1_cfa, CfaBuilder, Expr, Op};

    /// Unprotected shared counter: racy at 2 threads within a few
    /// steps. The leading skip keeps the *initial* state race-free,
    /// so a genuine witness needs a non-empty schedule.
    fn unprotected() -> MtProgram {
        let mut b = CfaBuilder::new("unprotected");
        let g = b.global("g");
        let l1 = b.fresh_loc();
        let l2 = b.fresh_loc();
        b.edge(b.entry(), Op::skip(), l1);
        b.edge(l1, Op::assign(g, Expr::var(g) + Expr::int(1)), l2);
        b.edge(l2, Op::skip(), l1);
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        MtProgram::new(cfa, g)
    }

    /// Counter incremented only inside an atomic section: stage-0
    /// Safe.
    fn atomic_counter() -> MtProgram {
        let mut b = CfaBuilder::new("atomic");
        let g = b.global("g");
        let l1 = b.fresh_loc();
        let l2 = b.fresh_loc();
        b.edge(b.entry(), Op::skip(), l1);
        b.mark_atomic(l1);
        b.edge(l1, Op::assign(g, Expr::var(g) + Expr::int(1)), l2);
        b.mark_atomic(l2);
        b.edge(l2, Op::skip(), b.entry());
        let cfa = b.build();
        let g = cfa.var_by_name("g").unwrap();
        MtProgram::new(cfa, g)
    }

    #[test]
    fn atomic_counter_decided_at_stage0() {
        let d = triage(&atomic_counter(), &TriageConfig::default());
        assert_eq!(d, TriageDecision::Stage0Safe);
        assert_eq!(d.stage_name(), "flow");
    }

    #[test]
    fn unprotected_counter_decided_at_stage1_with_replayable_witness() {
        let p = unprotected();
        let d = triage(&p, &TriageConfig::default());
        let TriageDecision::Stage1Race(w) = &d else {
            panic!("expected a stage-1 witness, got {d:?}");
        };
        assert_eq!(d.stage_name(), "sched");
        let race = replay_witness(&p, w).expect("witness must replay");
        assert_eq!(race.var, p.race_var());
        assert!(!w.steps.is_empty(), "the initial state is race-free");
    }

    #[test]
    fn figure1_falls_through() {
        // The safe test-and-set idiom: flow false-positives on x, and
        // no schedule can find a race in a race-free program — exactly
        // the case CIRC exists for.
        let cfa = figure1_cfa();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        let d = triage(&p, &TriageConfig::default());
        assert_eq!(d, TriageDecision::Fallthrough);
        assert_eq!(d.stage_name(), "circ");
    }

    #[test]
    fn malformed_program_falls_through() {
        use circ_ir::BoolExpr;
        // nondet() in an assume guard, with a non-atomic write so
        // stage 0 does not certify it: stage 1 must refuse to judge an
        // unexecutable program.
        let mut b = CfaBuilder::new("bad");
        let x = b.global("x");
        let l1 = b.fresh_loc();
        let l2 = b.fresh_loc();
        b.edge(b.entry(), Op::assume(BoolExpr::eq(Expr::Nondet, Expr::var(x))), l1);
        b.edge(b.entry(), Op::assign(x, Expr::int(1)), l2);
        let cfa = b.build();
        let x = cfa.var_by_name("x").unwrap();
        let p = MtProgram::new(cfa, x);
        assert_eq!(triage(&p, &TriageConfig::default()), TriageDecision::Fallthrough);
    }

    #[test]
    fn triage_is_deterministic() {
        let p = unprotected();
        let cfg = TriageConfig::default();
        assert_eq!(triage(&p, &cfg), triage(&p, &cfg));
    }

    #[test]
    fn tampered_witness_fails_replay() {
        let p = unprotected();
        let TriageDecision::Stage1Race(w) = triage(&p, &TriageConfig::default()) else {
            panic!("expected a witness");
        };
        // Truncating the schedule loses the race state.
        let mut short = w.clone();
        short.steps.clear();
        assert!(replay_witness(&p, &short).is_err());
        // Claiming a different thread count invalidates the steps.
        let mut wrong = w;
        wrong.n_threads = 1;
        assert!(replay_witness(&p, &wrong).is_err());
    }

    #[test]
    fn frontend_corpus_examples_triage_as_expected() {
        // End-to-end through the compiler: the atomic-counter idiom is
        // stage-0 Safe, the unprotected write is a stage-1 race.
        let safe = "\
global int c;\n#race c;\nthread worker {\n  loop { atomic { c = c + 1; } }\n}\n";
        let racy = "\
global int c;\n#race c;\nthread worker {\n  loop { c = c + 1; }\n}\n";
        let cfg = TriageConfig::default();
        let compiled = circ_frontend::compile(safe).expect("safe example compiles");
        let p = MtProgram::new(compiled.cfa.clone(), compiled.race_vars[0]);
        assert_eq!(triage(&p, &cfg), TriageDecision::Stage0Safe);
        let compiled = circ_frontend::compile(racy).expect("racy example compiles");
        let p = MtProgram::new(compiled.cfa.clone(), compiled.race_vars[0]);
        assert!(matches!(triage(&p, &cfg), TriageDecision::Stage1Race(_)));
    }
}
