//! The **CheckSim** procedure: weak simulation between ACFAs (§4.2).
//!
//! `check_sim(g, a)` decides whether `a` *weakly simulates* `g`
//! (written `g ⪯ a`): the greatest relation such that `q ⪯ p`
//! requires
//!
//! 1. `region(q) ⊆ region(p)` and equal atomicity flags,
//! 2. every silent move `q -∅→ q'` is matched by some `p'' ∈ τ*(p)`
//!    with `q' ⪯ p''`,
//! 3. every observable move `q -Y→ q'` (Y ≠ ∅) is matched by a weak
//!    move `p ⇒Y'⇒ p''` (τ\* then one `Y'`-edge then τ\*) with
//!    `Y ⊆ Y'` and `q' ⪯ p''`.
//!
//! The havoc-set inclusion `Y ⊆ Y'` follows the paper: an edge that
//! havocs more variables exhibits a superset of behaviors.
//!
//! This check discharges the *guarantee* step of the circular
//! assume–guarantee argument: if the abstract reachability graph of
//! the main thread (in context `A^∞`) is simulated by `A`, then `A`
//! soundly over-approximates every thread.

use crate::acfa::{Acfa, AcfaLocId};
use circ_governor::{Budget, Exhausted};
use circ_ir::Var;
use circ_par::Pool;
use std::collections::BTreeSet;

/// Decides `g ⪯ a` using syntactic region containment (every cube of
/// the left region subsumed by some cube of the right). See
/// [`check_sim_with`] for a semantic containment oracle.
pub fn check_sim(g: &Acfa, a: &Acfa) -> bool {
    check_sim_with(g, a, &|x, y| x.contained_in(y))
}

/// Decides `g ⪯ a` (see module docs) with a caller-supplied region
/// containment test (e.g. an SMT-backed semantic check). Both
/// automata must label their regions over the same predicate
/// indexing. The oracle must be `Sync`: obligation pairs may be
/// checked concurrently (see [`check_sim_counting_pool`]).
pub fn check_sim_with(
    g: &Acfa,
    a: &Acfa,
    contains: &(dyn Fn(&crate::cube::Region, &crate::cube::Region) -> bool + Sync),
) -> bool {
    check_sim_counting(g, a, contains).0
}

/// [`check_sim_with`], additionally reporting the number of
/// `(g-location, a-location)` pairs examined across all fixpoint
/// passes — the work metric CIRC's statistics track.
pub fn check_sim_counting(
    g: &Acfa,
    a: &Acfa,
    contains: &(dyn Fn(&crate::cube::Region, &crate::cube::Region) -> bool + Sync),
) -> (bool, u64) {
    check_sim_counting_pool(g, a, contains, &Pool::sequential())
}

/// [`check_sim_counting`] with the obligation checks of each fixpoint
/// pass distributed over `pool`.
///
/// The greatest fixpoint is computed Jacobi-style: every pass reads
/// the relation as it stood at the start of the pass and the computed
/// kills are applied together at the end. Each pass is therefore a
/// pure function of the previous relation — independent of worker
/// count or scheduling — and since the greatest simulation relation
/// is unique, the final answer (and the examined-pair count, which
/// only depends on the per-pass snapshots) is identical for every
/// `jobs` setting. Jacobi may take more passes than an in-place
/// (Gauss–Seidel) sweep, but each pass's rows are embarrassingly
/// parallel.
pub fn check_sim_counting_pool(
    g: &Acfa,
    a: &Acfa,
    contains: &(dyn Fn(&crate::cube::Region, &crate::cube::Region) -> bool + Sync),
    pool: &Pool,
) -> (bool, u64) {
    check_sim_budgeted(g, a, contains, pool, &Budget::unlimited())
        .expect("an unlimited budget cannot exhaust")
}

/// [`check_sim_counting_pool`] governed by a resource budget, polled
/// once before the label pass and once per Jacobi pass. On
/// exhaustion the fixpoint is abandoned and the caller receives
/// [`Exhausted`]; the partially-pruned relation is an
/// over-approximation of the greatest simulation, so no verdict can
/// soundly be extracted from it and none is returned.
pub fn check_sim_budgeted(
    g: &Acfa,
    a: &Acfa,
    contains: &(dyn Fn(&crate::cube::Region, &crate::cube::Region) -> bool + Sync),
    pool: &Pool,
    budget: &Budget,
) -> Result<(bool, u64), Exhausted> {
    let mut pairs: u64 = 0;
    let ng = g.num_locs();
    let na = a.num_locs();

    // Weak observable moves of `a`: (Y', destination) pairs.
    let a_tau: Vec<BTreeSet<AcfaLocId>> = a.locs().map(|p| a.tau_reach(p)).collect();
    let mut weak: Vec<Vec<(BTreeSet<Var>, AcfaLocId)>> = vec![Vec::new(); na];
    for p in a.locs() {
        let mut set: BTreeSet<(BTreeSet<Var>, AcfaLocId)> = BTreeSet::new();
        for &p1 in &a_tau[p.index()] {
            for e in a.out_edges(p1) {
                if e.havoc.is_empty() {
                    continue;
                }
                for &p2 in &a_tau[e.dst.index()] {
                    set.insert((e.havoc.clone(), p2));
                }
            }
        }
        weak[p.index()] = set.into_iter().collect();
    }

    // Greatest fixpoint: start from the label condition, prune. The
    // label row of each g-location only reads the automata, so the
    // rows are computed concurrently.
    budget.check()?;
    let g_locs: Vec<AcfaLocId> = g.locs().collect();
    let mut rel: Vec<Vec<bool>> = pool.map(&g_locs, |&q| {
        a.locs()
            .map(|p| g.is_atomic(q) == a.is_atomic(p) && contains(g.region(q), a.region(p)))
            .collect()
    });
    pairs += (ng as u64) * (na as u64);

    let mut changed = true;
    while changed {
        budget.check()?;
        // One Jacobi pass: decide every surviving pair against the
        // frozen snapshot `rel`, then apply the kills at once.
        let passes: Vec<(Vec<bool>, u64)> = pool.map(&g_locs, |&q| {
            let mut examined: u64 = 0;
            let row: Vec<bool> = a
                .locs()
                .map(|p| {
                    if !rel[q.index()][p.index()] {
                        return false;
                    }
                    examined += 1;
                    g.out_edges(q).all(|e| {
                        // A havoc edge may rewrite the old values, so any
                        // weak Y′-move with Y ⊆ Y′ matches — including
                        // Y = ∅ (the paper's condition (2) does not
                        // special-case silent moves). Silent moves may
                        // additionally be matched by staying put (weak
                        // simulation).
                        let by_weak_move = weak[p.index()]
                            .iter()
                            .any(|(y, p2)| e.havoc.is_subset(y) && rel[e.dst.index()][p2.index()]);
                        let by_stutter = e.havoc.is_empty()
                            && a_tau[p.index()].iter().any(|p2| rel[e.dst.index()][p2.index()]);
                        by_weak_move || by_stutter
                    })
                })
                .collect();
            (row, examined)
        });
        changed = false;
        for (q, (row, examined)) in passes.into_iter().enumerate() {
            pairs += examined;
            if row != rel[q] {
                changed = true;
            }
            rel[q] = row;
        }
    }

    Ok((rel[g.entry().index()][a.entry().index()], pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acfa::AcfaEdge;
    use crate::collapse::collapse;
    use crate::cube::{Cube, PredIx, Region};

    fn v(n: u32) -> Var {
        Var::from_raw(n)
    }

    fn edge(s: u32, havoc: &[u32], d: u32) -> AcfaEdge {
        AcfaEdge {
            src: AcfaLocId(s),
            havoc: havoc.iter().map(|x| v(*x)).collect(),
            dst: AcfaLocId(d),
        }
    }

    fn plain(n_locs: usize, edges: Vec<AcfaEdge>) -> Acfa {
        Acfa::from_parts(vec![Region::full(0); n_locs], vec![false; n_locs], edges)
    }

    #[test]
    fn empty_acfa_simulates_itself_only() {
        let empty = Acfa::empty(0);
        assert!(check_sim(&empty, &empty));
        // a one-step writer is NOT simulated by the empty context
        let writer = plain(2, vec![edge(0, &[0], 1)]);
        assert!(!check_sim(&writer, &empty));
        // but the empty context is simulated by the writer
        assert!(check_sim(&empty, &writer));
    }

    #[test]
    fn havoc_superset_simulates() {
        // g: 0 -{x}-> 1 ; a: 0 -{x,y}-> 1 — a simulates g, not vice
        // versa.
        let g = plain(2, vec![edge(0, &[0], 1)]);
        let a = plain(2, vec![edge(0, &[0, 1], 1)]);
        assert!(check_sim(&g, &a));
        assert!(!check_sim(&a, &g));
    }

    #[test]
    fn weak_matching_through_tau() {
        // g: 0 -{x}-> 1 ; a: 0 -τ-> 1 -{x}-> 2 — weakly simulates.
        let g = plain(2, vec![edge(0, &[0], 1)]);
        let a = plain(3, vec![edge(0, &[], 1), edge(1, &[0], 2)]);
        assert!(check_sim(&g, &a));
    }

    #[test]
    fn tau_moves_matched_by_staying() {
        // g: 0 -τ-> 1 -{x}-> 0 ; a: single loc with {x} self loop.
        let g = plain(2, vec![edge(0, &[], 1), edge(1, &[0], 0)]);
        let a = plain(1, vec![edge(0, &[0], 0)]);
        assert!(check_sim(&g, &a));
    }

    #[test]
    fn labels_block_simulation() {
        // g's target location allows p0 true or false, a's insists on
        // p0 true: containment fails on the false branch.
        let top = Region::full(1);
        let p0_true = Region::of_cube(Cube::top(1).with(PredIx(0), true));
        let g = Acfa::from_parts(
            vec![top.clone(), top.clone()],
            vec![false; 2],
            vec![edge(0, &[0], 1)],
        );
        let a = Acfa::from_parts(vec![top, p0_true], vec![false; 2], vec![edge(0, &[0], 1)]);
        assert!(!check_sim(&g, &a));
        assert!(check_sim(&a, &g));
    }

    #[test]
    fn atomicity_must_match() {
        let g =
            Acfa::from_parts(vec![Region::full(0); 2], vec![false, true], vec![edge(0, &[0], 1)]);
        let a = plain(2, vec![edge(0, &[0], 1)]);
        assert!(!check_sim(&g, &a));
        assert!(check_sim(&g, &g));
    }

    #[test]
    fn collapse_quotient_simulates_original() {
        // The quotient of any graph must simulate it (the guarantee
        // CIRC relies on when it reuses the minimized ARG as context).
        let g =
            plain(4, vec![edge(0, &[], 1), edge(1, &[1], 2), edge(2, &[0], 3), edge(3, &[1], 0)]);
        let q = collapse(&g);
        assert!(check_sim(&g, &q.acfa), "quotient must simulate the original");
    }

    #[test]
    fn exhausted_budget_aborts_the_fixpoint() {
        let g = plain(2, vec![edge(0, &[0], 1)]);
        let expired = Budget::with_timeout(std::time::Duration::ZERO);
        let result =
            check_sim_budgeted(&g, &g, &|x, y| x.contained_in(y), &Pool::sequential(), &expired);
        assert!(matches!(result, Err(Exhausted::Deadline { .. })));
        // The same check under no budget still answers normally.
        let ok = check_sim_budgeted(
            &g,
            &g,
            &|x, y| x.contained_in(y),
            &Pool::sequential(),
            &Budget::unlimited(),
        );
        assert!(matches!(ok, Ok((true, _))));
    }

    #[test]
    fn cycle_vs_finite_unrolling() {
        // A two-step unrolling of a loop is simulated by the loop.
        let unrolled = plain(3, vec![edge(0, &[0], 1), edge(1, &[0], 2)]);
        let looped = plain(1, vec![edge(0, &[0], 0)]);
        assert!(check_sim(&unrolled, &looped));
        // The loop is not simulated by the (terminating) unrolling.
        assert!(!check_sim(&looped, &unrolled));
    }
}
