//! Abstract threads and context models for the CIRC race checker.
//!
//! This crate implements the context-model machinery of §2.2–§3.4 and
//! §5 of *Race Checking by Context Inference*:
//!
//! * [`Cube`] / [`Region`] — the cartesian predicate-abstraction
//!   domain used both for abstract thread states and for ACFA
//!   location labels,
//! * [`Acfa`] — abstract control flow automata: locations labeled
//!   with regions over the global predicates (and an atomicity flag),
//!   edges labeled with *havoc* sets of global variables,
//! * [`CVal`] / [`ContextState`] — the counter abstraction
//!   `G : Q → {0..k, ω}` of an unbounded number of context threads,
//!   with the saturating arithmetic `k+1 = ω`, `ω±1 = ω`,
//! * [`collapse`] — the **Collapse** procedure: the weak bisimilarity
//!   quotient of an abstract reachability graph, with τ = edges that
//!   havoc nothing global,
//! * [`check_sim`] — the **CheckSim** procedure: weak simulation of
//!   one ACFA by another (the circular assume–guarantee obligation),
//! * [`context_reach`] — counter-abstracted reachability of the
//!   context running alone, used by the ω-check of ∞-CIRC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acfa;
mod collapse;
mod counter;
mod cube;
mod sim;

pub use acfa::{Acfa, AcfaEdge, AcfaLocId};
pub use collapse::{collapse, CollapseResult};
pub use counter::{context_reach, context_reach_budgeted, context_reach_with, CVal, ContextState};
pub use cube::{Cube, PredIx, Region};
pub use sim::{
    check_sim, check_sim_budgeted, check_sim_counting, check_sim_counting_pool, check_sim_with,
};
