//! Abstract control flow automata (§3.3).
//!
//! An ACFA is `(Q, q0, X, →, Q*, r)`: abstract locations labeled by
//! regions `r(q)` over the *global* predicates, havoc-labeled edges,
//! and atomic locations. When an abstract thread traverses an edge
//! `q -Y→ q'`, the globals in `Y` receive arbitrary values subject to
//! the target label `r(q')`.

use crate::cube::Region;
use circ_ir::Var;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

/// An abstract location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AcfaLocId(pub u32);

impl AcfaLocId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AcfaLocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A havoc edge of an ACFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcfaEdge {
    /// Source location.
    pub src: AcfaLocId,
    /// Global variables written (with arbitrary values) on traversal.
    pub havoc: BTreeSet<Var>,
    /// Target location.
    pub dst: AcfaLocId,
}

#[derive(Debug, Clone)]
struct AcfaLoc {
    region: Region,
    atomic: bool,
}

/// An abstract control flow automaton.
#[derive(Debug, Clone)]
pub struct Acfa {
    locs: Vec<AcfaLoc>,
    edges: Vec<AcfaEdge>,
    out: Vec<Vec<usize>>,
}

impl Acfa {
    /// The *empty* ACFA over `n_preds` predicates: a single non-atomic
    /// location labeled `true` with no edges — a context that does
    /// nothing (the initial context of CIRC).
    pub fn empty(n_preds: usize) -> Acfa {
        Acfa {
            locs: vec![AcfaLoc { region: Region::full(n_preds), atomic: false }],
            edges: Vec::new(),
            out: vec![Vec::new()],
        }
    }

    /// Builds an ACFA from parts. Location 0 is the start location.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty, lengths mismatch, or an edge
    /// endpoint is out of range.
    pub fn from_parts(regions: Vec<Region>, atomic: Vec<bool>, edges: Vec<AcfaEdge>) -> Acfa {
        assert!(!regions.is_empty(), "an ACFA needs at least the start location");
        assert_eq!(regions.len(), atomic.len(), "regions/atomic length mismatch");
        let n = regions.len();
        let mut out = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            assert!(e.src.index() < n && e.dst.index() < n, "edge endpoint out of range");
            out[e.src.index()].push(i);
        }
        let locs = regions
            .into_iter()
            .zip(atomic)
            .map(|(region, atomic)| AcfaLoc { region, atomic })
            .collect();
        Acfa { locs, edges, out }
    }

    /// The start location.
    pub fn entry(&self) -> AcfaLocId {
        AcfaLocId(0)
    }

    /// Number of abstract locations.
    pub fn num_locs(&self) -> usize {
        self.locs.len()
    }

    /// Iterator over location ids.
    pub fn locs(&self) -> impl Iterator<Item = AcfaLocId> {
        (0..self.locs.len() as u32).map(AcfaLocId)
    }

    /// The region labeling `q`.
    pub fn region(&self, q: AcfaLocId) -> &Region {
        &self.locs[q.index()].region
    }

    /// Whether `q` is atomic.
    pub fn is_atomic(&self, q: AcfaLocId) -> bool {
        self.locs[q.index()].atomic
    }

    /// All edges.
    pub fn edges(&self) -> &[AcfaEdge] {
        &self.edges
    }

    /// Out-edges of `q` (as indices into [`Acfa::edges`]).
    pub fn out_edges(&self, q: AcfaLocId) -> impl Iterator<Item = &AcfaEdge> {
        self.out[q.index()].iter().map(|&i| &self.edges[i])
    }

    /// Whether a context thread at `q` can write `x`: some out-edge
    /// havocs `x` (§4.1 — abstract threads never *read*).
    pub fn writes_at(&self, q: AcfaLocId, x: Var) -> bool {
        self.out_edges(q).any(|e| e.havoc.contains(&x))
    }

    /// Locations reachable from `q` by edges with an empty havoc set
    /// (τ-closure, including `q` itself).
    pub fn tau_reach(&self, q: AcfaLocId) -> BTreeSet<AcfaLocId> {
        let mut seen: BTreeSet<AcfaLocId> = [q].into();
        let mut stack = vec![q];
        while let Some(s) = stack.pop() {
            for e in self.out_edges(s) {
                if e.havoc.is_empty() && seen.insert(e.dst) {
                    stack.push(e.dst);
                }
            }
        }
        seen
    }

    /// Renders the ACFA as text, naming predicates with `pred_name`
    /// and variables with `var_name`.
    pub fn display_with(
        &self,
        pred_name: &impl Fn(crate::cube::PredIx) -> String,
        var_name: &impl Fn(Var) -> String,
    ) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "ACFA ({} locations, {} edges)", self.num_locs(), self.edges.len());
        for q in self.locs() {
            let star = if self.is_atomic(q) { "*" } else { " " };
            let entry = if q == self.entry() { " (start)" } else { "" };
            let _ = writeln!(s, "  {q}{star}{entry}  [{}]", self.region(q).display_with(pred_name));
            for e in self.out_edges(q) {
                let havoc: Vec<String> = e.havoc.iter().map(|v| var_name(*v)).collect();
                let _ = writeln!(s, "    --havoc{{{}}}--> {}", havoc.join(","), e.dst);
            }
        }
        s
    }
}

impl fmt::Display for Acfa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(&|i| format!("{i}"), &|v| format!("{v}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{Cube, PredIx};

    fn v(n: u32) -> Var {
        Var::from_raw(n)
    }

    #[test]
    fn empty_acfa_shape() {
        let a = Acfa::empty(2);
        assert_eq!(a.num_locs(), 1);
        assert!(a.edges().is_empty());
        assert!(!a.is_atomic(a.entry()));
        assert!(!a.region(a.entry()).is_empty());
    }

    #[test]
    fn from_parts_and_queries() {
        let r0 = Region::full(1);
        let r1 = Region::of_cube(Cube::top(1).with(PredIx(0), true));
        let e = AcfaEdge { src: AcfaLocId(0), havoc: [v(0)].into(), dst: AcfaLocId(1) };
        let a = Acfa::from_parts(vec![r0, r1], vec![false, true], vec![e]);
        assert_eq!(a.num_locs(), 2);
        assert!(a.is_atomic(AcfaLocId(1)));
        assert!(a.writes_at(AcfaLocId(0), v(0)));
        assert!(!a.writes_at(AcfaLocId(0), v(1)));
        assert!(!a.writes_at(AcfaLocId(1), v(0)));
    }

    #[test]
    fn tau_reach_follows_empty_havoc_only() {
        // 0 -τ-> 1 -{x}-> 2 -τ-> 0
        let r = Region::full(0);
        let edges = vec![
            AcfaEdge { src: AcfaLocId(0), havoc: BTreeSet::new(), dst: AcfaLocId(1) },
            AcfaEdge { src: AcfaLocId(1), havoc: [v(0)].into(), dst: AcfaLocId(2) },
            AcfaEdge { src: AcfaLocId(2), havoc: BTreeSet::new(), dst: AcfaLocId(0) },
        ];
        let a = Acfa::from_parts(vec![r.clone(), r.clone(), r], vec![false; 3], edges);
        let t0 = a.tau_reach(AcfaLocId(0));
        assert!(t0.contains(&AcfaLocId(0)) && t0.contains(&AcfaLocId(1)));
        assert!(!t0.contains(&AcfaLocId(2)));
        let t2 = a.tau_reach(AcfaLocId(2));
        assert_eq!(t2.len(), 3); // 2 -τ-> 0 -τ-> 1
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn bad_edge_panics() {
        let e = AcfaEdge { src: AcfaLocId(0), havoc: BTreeSet::new(), dst: AcfaLocId(5) };
        let _ = Acfa::from_parts(vec![Region::full(0)], vec![false], vec![e]);
    }
}
