//! Cubes and regions: the cartesian predicate-abstraction domain.
//!
//! A [`Cube`] is a partial truth assignment to an (externally owned)
//! indexed set of predicates `P = {p₀, …, p_{n−1}}`; it denotes the
//! conjunction of its assigned literals. A [`Region`] is a finite
//! union (disjunction) of cubes. ACFA location labels, ARG location
//! labels, and the data part of abstract thread states all live in
//! this domain.
//!
//! All operations here are syntactic; semantic questions (does this
//! cube imply that predicate?) go through the SMT layer in
//! `circ-core`.

use std::fmt;

/// Index of a predicate in the checker's current predicate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredIx(pub u32);

impl PredIx {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredIx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A partial assignment of truth values to predicates, denoting the
/// conjunction of its assigned literals ([`None`] = unconstrained).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    vals: Vec<Option<bool>>,
}

impl Cube {
    /// The unconstrained cube (`true`) over `n` predicates.
    pub fn top(n: usize) -> Cube {
        Cube { vals: vec![None; n] }
    }

    /// Number of predicate slots.
    pub fn width(&self) -> usize {
        self.vals.len()
    }

    /// The value assigned to predicate `i`.
    pub fn get(&self, i: PredIx) -> Option<bool> {
        self.vals[i.index()]
    }

    /// Assigns predicate `i`.
    pub fn set(&mut self, i: PredIx, v: bool) {
        self.vals[i.index()] = Some(v);
    }

    /// Clears predicate `i` (makes it unconstrained).
    pub fn clear(&mut self, i: PredIx) {
        self.vals[i.index()] = None;
    }

    /// Returns a copy with `i` assigned to `v`.
    pub fn with(&self, i: PredIx, v: bool) -> Cube {
        let mut c = self.clone();
        c.set(i, v);
        c
    }

    /// Iterates over the assigned literals `(index, value)`.
    pub fn literals(&self) -> impl Iterator<Item = (PredIx, bool)> + '_ {
        self.vals.iter().enumerate().filter_map(|(i, v)| v.map(|b| (PredIx(i as u32), b)))
    }

    /// Number of assigned literals.
    pub fn num_literals(&self) -> usize {
        self.vals.iter().filter(|v| v.is_some()).count()
    }

    /// True if no predicate is assigned (denotes `true`).
    pub fn is_top(&self) -> bool {
        self.vals.iter().all(Option::is_none)
    }

    /// Syntactic subsumption: `self ⊑ other` — every literal of
    /// `other` is assigned identically in `self`, hence the state set
    /// of `self` is contained in that of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn subsumed_by(&self, other: &Cube) -> bool {
        assert_eq!(self.width(), other.width(), "cube widths differ");
        other.literals().all(|(i, v)| self.get(i) == Some(v))
    }

    /// Conjunction of two cubes; `None` if they assign some predicate
    /// opposite values (empty intersection, syntactically).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn meet(&self, other: &Cube) -> Option<Cube> {
        assert_eq!(self.width(), other.width(), "cube widths differ");
        let mut out = self.clone();
        for (i, v) in other.literals() {
            match out.get(i) {
                None => out.set(i, v),
                Some(w) if w == v => {}
                Some(_) => return None,
            }
        }
        Some(out)
    }

    /// Drops every literal whose predicate is not in `keep` (indexed
    /// by predicate slot). Used to project a cube onto the global
    /// predicates, and to havoc variables (drop affected predicates).
    pub fn project(&self, keep: &impl Fn(PredIx) -> bool) -> Cube {
        let mut out = self.clone();
        for i in 0..self.vals.len() {
            let ix = PredIx(i as u32);
            if out.get(ix).is_some() && !keep(ix) {
                out.clear(ix);
            }
        }
        out
    }

    /// Grows the cube to `n` slots (new predicates unconstrained).
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the current width.
    pub fn widen_to(&self, n: usize) -> Cube {
        assert!(n >= self.width(), "cannot shrink a cube");
        let mut vals = self.vals.clone();
        vals.resize(n, None);
        Cube { vals }
    }

    /// Renders the cube with a predicate naming function.
    pub fn display_with(&self, name: &impl Fn(PredIx) -> String) -> String {
        if self.is_top() {
            return "true".to_string();
        }
        let mut parts = Vec::new();
        for (i, v) in self.literals() {
            if v {
                parts.push(name(i));
            } else {
                parts.push(format!("!({})", name(i)));
            }
        }
        parts.join(" & ")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(&|i| format!("{i}")))
    }
}

/// A finite union of cubes, kept irredundant under syntactic
/// subsumption.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Region {
    cubes: Vec<Cube>,
}

impl Region {
    /// The empty region (`false`).
    pub fn empty() -> Region {
        Region::default()
    }

    /// The full region (`true`) over `n` predicates.
    pub fn full(n: usize) -> Region {
        Region { cubes: vec![Cube::top(n)] }
    }

    /// A region of a single cube.
    pub fn of_cube(c: Cube) -> Region {
        Region { cubes: vec![c] }
    }

    /// The member cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// True if the region denotes `false`.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds a cube, pruning syntactically subsumed members. Returns
    /// `true` if the region grew (the cube was not already covered).
    pub fn add(&mut self, c: Cube) -> bool {
        if self.cubes.iter().any(|have| c.subsumed_by(have)) {
            return false;
        }
        self.cubes.retain(|have| !have.subsumed_by(&c));
        self.cubes.push(c);
        self.cubes.sort();
        true
    }

    /// Union with another region.
    pub fn union(&mut self, other: &Region) {
        for c in &other.cubes {
            self.add(c.clone());
        }
    }

    /// Syntactic containment of a cube: some member subsumes it.
    pub fn covers_cube(&self, c: &Cube) -> bool {
        self.cubes.iter().any(|have| c.subsumed_by(have))
    }

    /// Syntactic containment `self ⊆ other`: every member cube of
    /// `self` is subsumed by some member of `other`. (Sound but
    /// incomplete — a cube can be semantically covered by a union
    /// without being subsumed by a single member.)
    pub fn contained_in(&self, other: &Region) -> bool {
        self.cubes.iter().all(|c| other.covers_cube(c))
    }

    /// Applies [`Cube::project`] to every member.
    pub fn project(&self, keep: &impl Fn(PredIx) -> bool) -> Region {
        let mut out = Region::empty();
        for c in &self.cubes {
            out.add(c.project(keep));
        }
        out
    }

    /// Pairwise meet of two regions (DNF conjunction).
    pub fn meet(&self, other: &Region) -> Region {
        let mut out = Region::empty();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(m) = a.meet(b) {
                    out.add(m);
                }
            }
        }
        out
    }

    /// Grows every member to width `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than a member's width.
    pub fn widen_to(&self, n: usize) -> Region {
        Region { cubes: self.cubes.iter().map(|c| c.widen_to(n)).collect() }
    }

    /// Renders the region with a predicate naming function.
    pub fn display_with(&self, name: &impl Fn(PredIx) -> String) -> String {
        if self.is_empty() {
            return "false".to_string();
        }
        self.cubes.iter().map(|c| c.display_with(name)).collect::<Vec<_>>().join("  |  ")
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(&|i| format!("{i}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PredIx {
        PredIx(i)
    }

    #[test]
    fn cube_subsumption() {
        let top = Cube::top(3);
        let c1 = top.with(p(0), true);
        let c2 = c1.with(p(1), false);
        assert!(c1.subsumed_by(&top));
        assert!(c2.subsumed_by(&c1));
        assert!(!c1.subsumed_by(&c2));
        assert!(c2.subsumed_by(&c2));
        // conflicting literal blocks subsumption
        let c3 = top.with(p(0), false);
        assert!(!c3.subsumed_by(&c1));
    }

    #[test]
    fn cube_meet() {
        let top = Cube::top(2);
        let a = top.with(p(0), true);
        let b = top.with(p(1), false);
        let m = a.meet(&b).unwrap();
        assert_eq!(m.get(p(0)), Some(true));
        assert_eq!(m.get(p(1)), Some(false));
        // conflict
        assert!(a.meet(&top.with(p(0), false)).is_none());
    }

    #[test]
    fn cube_project_drops_literals() {
        let c = Cube::top(3).with(p(0), true).with(p(2), false);
        let q = c.project(&|i| i != p(2));
        assert_eq!(q.get(p(0)), Some(true));
        assert_eq!(q.get(p(2)), None);
    }

    #[test]
    fn cube_widen() {
        let c = Cube::top(2).with(p(1), true);
        let w = c.widen_to(4);
        assert_eq!(w.width(), 4);
        assert_eq!(w.get(p(1)), Some(true));
        assert_eq!(w.get(p(3)), None);
    }

    #[test]
    fn region_add_prunes_subsumed() {
        let top = Cube::top(2);
        let strong = top.with(p(0), true).with(p(1), true);
        let weak = top.with(p(0), true);
        let mut r = Region::empty();
        assert!(r.add(strong.clone()));
        assert!(r.add(weak.clone()));
        // weak subsumes strong: only weak remains
        assert_eq!(r.cubes().len(), 1);
        assert_eq!(r.cubes()[0], weak);
        // adding strong again is a no-op
        assert!(!r.add(strong));
    }

    #[test]
    fn region_containment() {
        let top = Cube::top(2);
        let a = Region::of_cube(top.with(p(0), true));
        let full = Region::full(2);
        assert!(a.contained_in(&full));
        assert!(!full.contained_in(&a));
        assert!(Region::empty().contained_in(&a));
        assert!(!a.contained_in(&Region::empty()));
    }

    #[test]
    fn region_meet_dnf() {
        let top = Cube::top(2);
        let mut left = Region::empty();
        left.add(top.with(p(0), true));
        left.add(top.with(p(0), false));
        let right = Region::of_cube(top.with(p(1), true));
        let m = left.meet(&right);
        assert_eq!(m.cubes().len(), 2);
        assert!(m.cubes().iter().all(|c| c.get(p(1)) == Some(true)));
    }

    #[test]
    fn region_display() {
        let top = Cube::top(2);
        let mut r = Region::empty();
        r.add(top.with(p(0), true));
        let s = r.display_with(&|_| "state = 0".to_string());
        assert_eq!(s, "state = 0");
        assert_eq!(Region::empty().display_with(&|_| String::new()), "false");
        assert_eq!(Region::full(2).display_with(&|_| String::new()), "true");
    }
}
