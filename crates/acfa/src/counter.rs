//! Counter abstraction of unboundedly many context threads (§2.3,
//! §3.4 item 3).
//!
//! A context state maps each ACFA location to the number of abstract
//! threads sitting there, counted exactly up to a parameter `k` and
//! collapsed to ω beyond: `α_k(j) = j` if `j ≤ k`, else ω, with the
//! saturating arithmetic `k+1 = ω`, `ω+1 = ω`, `ω−1 = ω`.

use crate::acfa::{Acfa, AcfaLocId};
use circ_governor::{Budget, Exhausted};
use std::collections::BTreeSet;
use std::fmt;

/// A counter value in `{0, …, k, ω}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CVal {
    /// An exact count (`≤ k` by construction).
    Fin(u32),
    /// "Arbitrarily many".
    Omega,
}

impl CVal {
    /// `self + 1` under the abstraction with parameter `k`.
    pub fn inc(self, k: u32) -> CVal {
        match self {
            CVal::Fin(j) if j < k => CVal::Fin(j + 1),
            _ => CVal::Omega,
        }
    }

    /// `self − 1` (`ω − 1 = ω`).
    ///
    /// # Panics
    ///
    /// Panics on `Fin(0)` — callers must check positivity first.
    pub fn dec(self) -> CVal {
        match self {
            CVal::Fin(0) => panic!("decrement of zero counter"),
            CVal::Fin(j) => CVal::Fin(j - 1),
            CVal::Omega => CVal::Omega,
        }
    }

    /// Is the count at least `n`? (ω ≥ anything.)
    pub fn at_least(self, n: u32) -> bool {
        match self {
            CVal::Fin(j) => j >= n,
            CVal::Omega => true,
        }
    }

    /// Is the count nonzero?
    pub fn positive(self) -> bool {
        self.at_least(1)
    }
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVal::Fin(j) => write!(f, "{j}"),
            CVal::Omega => write!(f, "ω"),
        }
    }
}

/// An abstract context state `G : Q → {0..k, ω}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextState {
    counts: Vec<CVal>,
}

impl ContextState {
    /// The initial context: `init` threads at the ACFA start location,
    /// zero elsewhere. CIRC proper uses `init = ω`; the ω-CIRC
    /// optimization uses `init = Fin(k)`.
    pub fn initial(acfa: &Acfa, init: CVal) -> ContextState {
        let mut counts = vec![CVal::Fin(0); acfa.num_locs()];
        counts[acfa.entry().index()] = init;
        ContextState { counts }
    }

    /// The count at location `q`.
    pub fn count(&self, q: AcfaLocId) -> CVal {
        self.counts[q.index()]
    }

    /// Number of location slots.
    pub fn width(&self) -> usize {
        self.counts.len()
    }

    /// Locations with a positive count.
    pub fn occupied(&self) -> impl Iterator<Item = AcfaLocId> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.positive())
            .map(|(i, _)| AcfaLocId(i as u32))
    }

    /// The successor context after one abstract thread moves
    /// `src → dst` (counter semantics of §3.4): `G'(src) = G(src)−1`,
    /// `G'(dst) = α_k(G(dst)+1)`.
    ///
    /// # Panics
    ///
    /// Panics if no thread occupies `src`.
    pub fn step(&self, src: AcfaLocId, dst: AcfaLocId, k: u32) -> ContextState {
        let mut counts = self.counts.clone();
        if src == dst {
            return ContextState { counts };
        }
        counts[src.index()] = counts[src.index()].dec();
        counts[dst.index()] = counts[dst.index()].inc(k);
        ContextState { counts }
    }

    /// The occupied *atomic* locations, given the ACFA.
    pub fn atomic_occupied<'a>(&'a self, acfa: &'a Acfa) -> impl Iterator<Item = AcfaLocId> + 'a {
        self.occupied().filter(|q| acfa.is_atomic(*q))
    }
}

impl fmt::Display for ContextState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Reachable context states of the ACFA running *alone* (no main
/// thread), under the atomic-scheduling rule. Data constraints on the
/// location labels are ignored, which only adds states — a sound
/// over-approximation for the ω-check of ∞-CIRC (§5).
pub fn context_reach(acfa: &Acfa, k: u32, init: CVal) -> BTreeSet<ContextState> {
    context_reach_with(acfa, k, init, &mut |_| true)
}

/// Like [`context_reach`], but a configuration is explored only when
/// `consistent` accepts it — callers pass a label-consistency oracle
/// (the conjunction of the occupied locations' regions must be
/// satisfiable), which is what makes the ω-goodness check of ∞-CIRC
/// precise enough to conclude.
pub fn context_reach_with(
    acfa: &Acfa,
    k: u32,
    init: CVal,
    consistent: &mut dyn FnMut(&ContextState) -> bool,
) -> BTreeSet<ContextState> {
    context_reach_budgeted(acfa, k, init, consistent, &Budget::unlimited())
        .expect("an unlimited budget cannot exhaust")
}

/// [`context_reach_with`] governed by a resource budget. The
/// configuration space is exponential in the ACFA size, so this is
/// the enumeration most likely to run away on a large context model:
/// the budget is polled once per explored configuration and each
/// retained one is charged against the memory ceiling.
pub fn context_reach_budgeted(
    acfa: &Acfa,
    k: u32,
    init: CVal,
    consistent: &mut dyn FnMut(&ContextState) -> bool,
    budget: &Budget,
) -> Result<BTreeSet<ContextState>, Exhausted> {
    // Approximate retained bytes per configuration: one counter per
    // ACFA location plus set-node bookkeeping.
    let config_bytes = acfa.num_locs() as u64 * 8 + 48;
    let mut seen: BTreeSet<ContextState> = BTreeSet::new();
    let first = ContextState::initial(acfa, init);
    if !consistent(&first) {
        return Ok(seen);
    }
    let mut stack = vec![first.clone()];
    seen.insert(first);
    budget.charge(config_bytes);
    while let Some(g) = stack.pop() {
        budget.check()?;
        let atomic: Vec<AcfaLocId> = g.atomic_occupied(acfa).collect();
        let movable: Vec<AcfaLocId> = match atomic.len() {
            0 => g.occupied().collect(),
            1 => atomic,
            _ => Vec::new(), // unreachable with a non-atomic entry
        };
        for src in movable {
            for e in acfa.out_edges(src) {
                let next = g.step(src, e.dst, k);
                if !seen.contains(&next) && consistent(&next) {
                    seen.insert(next.clone());
                    budget.charge(config_bytes);
                    stack.push(next);
                }
            }
        }
    }
    Ok(seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acfa::AcfaEdge;
    use crate::cube::Region;
    use std::collections::BTreeSet as Set;

    #[test]
    fn cval_arithmetic() {
        let k = 2;
        assert_eq!(CVal::Fin(0).inc(k), CVal::Fin(1));
        assert_eq!(CVal::Fin(2).inc(k), CVal::Omega);
        assert_eq!(CVal::Omega.inc(k), CVal::Omega);
        assert_eq!(CVal::Fin(2).dec(), CVal::Fin(1));
        assert_eq!(CVal::Omega.dec(), CVal::Omega);
        assert!(CVal::Omega.at_least(1_000_000));
        assert!(!CVal::Fin(1).at_least(2));
    }

    #[test]
    #[should_panic(expected = "decrement of zero")]
    fn dec_zero_panics() {
        let _ = CVal::Fin(0).dec();
    }

    fn ring(n: u32) -> Acfa {
        // a ring 0 -> 1 -> ... -> n-1 -> 0 with τ edges
        let regions = vec![Region::full(0); n as usize];
        let atomic = vec![false; n as usize];
        let edges = (0..n)
            .map(|i| AcfaEdge { src: AcfaLocId(i), havoc: Set::new(), dst: AcfaLocId((i + 1) % n) })
            .collect();
        Acfa::from_parts(regions, atomic, edges)
    }

    #[test]
    fn step_moves_counts() {
        let a = ring(3);
        let g = ContextState::initial(&a, CVal::Fin(2));
        let g2 = g.step(AcfaLocId(0), AcfaLocId(1), 2);
        assert_eq!(g2.count(AcfaLocId(0)), CVal::Fin(1));
        assert_eq!(g2.count(AcfaLocId(1)), CVal::Fin(1));
        // omega stays omega on both inc and dec
        let g = ContextState::initial(&a, CVal::Omega);
        let g2 = g.step(AcfaLocId(0), AcfaLocId(1), 1);
        assert_eq!(g2.count(AcfaLocId(0)), CVal::Omega);
        assert_eq!(g2.count(AcfaLocId(1)), CVal::Fin(1));
    }

    #[test]
    fn context_reach_finite_threads() {
        // 2 threads on a 3-ring with k = 2: counts are exact, total
        // always 2: C(2 + 3 - 1, 2) = 6 configurations... all
        // distributions of 2 tokens over 3 slots = 6.
        let a = ring(3);
        let reach = context_reach(&a, 2, CVal::Fin(2));
        assert_eq!(reach.len(), 6);
    }

    #[test]
    fn context_reach_omega() {
        // ω threads on a 2-ring with k = 1: counts in {0,1,ω} per
        // slot; from [ω 0]: moving yields ω/[1→ω] patterns; the set
        // stays small and every state keeps slot 0 at ω (ω−1 = ω).
        let a = ring(2);
        let reach = context_reach(&a, 1, CVal::Omega);
        assert!(reach.iter().all(|g| g.count(AcfaLocId(0)) == CVal::Omega));
        // states: [ω 0], [ω 1], [ω ω]
        assert_eq!(reach.len(), 3);
    }

    #[test]
    fn atomic_scheduling_in_context_reach() {
        // 0 -τ-> 1(atomic) -τ-> 0; with 2 threads, at most one can be
        // at the atomic location, and while one is there the other
        // cannot move: no state [0 2].
        let regions = vec![Region::full(0); 2];
        let edges = vec![
            AcfaEdge { src: AcfaLocId(0), havoc: Set::new(), dst: AcfaLocId(1) },
            AcfaEdge { src: AcfaLocId(1), havoc: Set::new(), dst: AcfaLocId(0) },
        ];
        let a = Acfa::from_parts(regions, vec![false, true], edges);
        let reach = context_reach(&a, 2, CVal::Fin(2));
        assert!(reach.iter().all(|g| !g.count(AcfaLocId(1)).at_least(2)));
    }

    #[test]
    fn self_loop_step_is_identity() {
        let a = ring(2);
        let g = ContextState::initial(&a, CVal::Fin(1));
        assert_eq!(g.step(AcfaLocId(0), AcfaLocId(0), 5), g);
    }
}
