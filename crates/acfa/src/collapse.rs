//! The **Collapse** procedure (§5): weak bisimulation minimization of
//! an abstract reachability graph.
//!
//! Collapse takes an ARG (materialized as an [`Acfa`] whose location
//! labels are already projected onto the global predicates) and
//! returns its weak bisimilarity quotient together with the map `μ`
//! from input locations to quotient locations.
//!
//! * Observables: the (global) region label and the atomicity flag.
//! * Actions: the havoc sets on edges; edges that havoc nothing are
//!   silent (τ).
//! * Per the paper, an intra-class edge with a nonempty havoc set
//!   becomes a self loop on the quotient class, and parallel edges
//!   between the same pair of classes merge by unioning their havoc
//!   sets (havocking more variables only adds behaviors, so both
//!   transformations over-approximate).

use crate::acfa::{Acfa, AcfaEdge, AcfaLocId};
use circ_ir::Var;
use std::collections::{BTreeMap, BTreeSet};

/// Output of [`collapse`].
#[derive(Debug, Clone)]
pub struct CollapseResult {
    /// The quotient ACFA.
    pub acfa: Acfa,
    /// `map[i]` is the quotient location of input location `i`.
    pub map: Vec<AcfaLocId>,
    /// Partition-refinement iterations until the fixpoint (0 when the
    /// result was produced without running the refinement loop).
    pub iterations: usize,
}

/// One weak-transition signature entry: `None` marks a silent move.
type SigEntry = (Option<BTreeSet<Var>>, u32);

/// Computes the weak bisimilarity quotient of `g`.
pub fn collapse(g: &Acfa) -> CollapseResult {
    let n = g.num_locs();
    let tau: Vec<BTreeSet<AcfaLocId>> = g.locs().map(|q| g.tau_reach(q)).collect();

    // Initial partition: by (region, atomic).
    let mut block: Vec<u32> = vec![0; n];
    {
        let mut key_to_block: BTreeMap<(Vec<u8>, bool), u32> = BTreeMap::new();
        for q in g.locs() {
            // Use the Display form of the region as a stable partition
            // key (regions are kept sorted, so equality is syntactic).
            let key = (format!("{}", g.region(q)).into_bytes(), g.is_atomic(q));
            let next = key_to_block.len() as u32;
            let b = *key_to_block.entry(key).or_insert(next);
            block[q.index()] = b;
        }
    }

    // Refine until stable.
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut key_to_block: BTreeMap<(u32, BTreeSet<SigEntry>), u32> = BTreeMap::new();
        let mut new_block = vec![0u32; n];
        for q in g.locs() {
            let sig = signature(g, &tau, &block, q);
            let key = (block[q.index()], sig);
            let next = key_to_block.len() as u32;
            new_block[q.index()] = *key_to_block.entry(key).or_insert(next);
        }
        let stable = same_partition(&block, &new_block);
        block = new_block;
        if stable {
            break;
        }
    }

    // Renumber so the entry's class is location 0.
    let entry_block = block[g.entry().index()];
    let mut renum: BTreeMap<u32, u32> = BTreeMap::new();
    renum.insert(entry_block, 0);
    for &b in &block {
        let next = renum.len() as u32;
        renum.entry(b).or_insert(next);
    }
    let num_blocks = renum.len();
    let map: Vec<AcfaLocId> = block.iter().map(|b| AcfaLocId(renum[b])).collect();

    // Representative label/atomicity per class (all members agree).
    let mut regions = vec![None; num_blocks];
    let mut atomic = vec![false; num_blocks];
    for q in g.locs() {
        let b = map[q.index()].index();
        if regions[b].is_none() {
            regions[b] = Some(g.region(q).clone());
            atomic[b] = g.is_atomic(q);
        }
    }
    let regions: Vec<_> = regions.into_iter().map(Option::unwrap).collect();

    // Quotient edges: merge per (src class, dst class) by unioning
    // havocs; drop silent intra-class edges.
    let mut edge_map: BTreeMap<(u32, u32), BTreeSet<Var>> = BTreeMap::new();
    for e in g.edges() {
        let bs = map[e.src.index()];
        let bd = map[e.dst.index()];
        if bs == bd && e.havoc.is_empty() {
            continue;
        }
        edge_map.entry((bs.0, bd.0)).or_default().extend(e.havoc.iter().copied());
    }
    let edges: Vec<AcfaEdge> = edge_map
        .into_iter()
        .map(|((s, d), havoc)| AcfaEdge { src: AcfaLocId(s), havoc, dst: AcfaLocId(d) })
        .collect();

    CollapseResult { acfa: Acfa::from_parts(regions, atomic, edges), map, iterations }
}

fn signature(
    g: &Acfa,
    tau: &[BTreeSet<AcfaLocId>],
    block: &[u32],
    q: AcfaLocId,
) -> BTreeSet<SigEntry> {
    let mut sig = BTreeSet::new();
    let my_block = block[q.index()];
    for &s1 in &tau[q.index()] {
        // Silent weak moves to other classes.
        if block[s1.index()] != my_block {
            sig.insert((None, block[s1.index()]));
        }
        for e in g.out_edges(s1) {
            if e.havoc.is_empty() {
                continue; // covered by the τ-closure above
            }
            for &s2 in &tau[e.dst.index()] {
                sig.insert((Some(e.havoc.clone()), block[s2.index()]));
            }
        }
    }
    sig
}

/// Do two block assignments induce the same partition?
fn same_partition(a: &[u32], b: &[u32]) -> bool {
    let mut fwd: BTreeMap<u32, u32> = BTreeMap::new();
    let mut bwd: BTreeMap<u32, u32> = BTreeMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{Cube, PredIx, Region};

    fn v(n: u32) -> Var {
        Var::from_raw(n)
    }

    fn edge(s: u32, havoc: &[u32], d: u32) -> AcfaEdge {
        AcfaEdge {
            src: AcfaLocId(s),
            havoc: havoc.iter().map(|x| v(*x)).collect(),
            dst: AcfaLocId(d),
        }
    }

    #[test]
    fn tau_chain_collapses_to_point() {
        // 0 -τ-> 1 -τ-> 2, all labels true: one class, no edges.
        let regions = vec![Region::full(0); 3];
        let g = Acfa::from_parts(regions, vec![false; 3], vec![edge(0, &[], 1), edge(1, &[], 2)]);
        let r = collapse(&g);
        assert_eq!(r.acfa.num_locs(), 1);
        assert!(r.acfa.edges().is_empty());
        assert!(r.map.iter().all(|m| *m == AcfaLocId(0)));
    }

    #[test]
    fn labels_prevent_collapse() {
        // 0 -τ-> 1 with different labels: two classes, one τ edge.
        let p0 = Region::of_cube(Cube::top(1).with(PredIx(0), true));
        let g = Acfa::from_parts(vec![Region::full(1), p0], vec![false; 2], vec![edge(0, &[], 1)]);
        let r = collapse(&g);
        assert_eq!(r.acfa.num_locs(), 2);
        assert_eq!(r.acfa.edges().len(), 1);
        assert!(r.acfa.edges()[0].havoc.is_empty());
    }

    #[test]
    fn atomicity_prevents_collapse() {
        let regions = vec![Region::full(0); 2];
        let g = Acfa::from_parts(regions, vec![false, true], vec![edge(0, &[], 1)]);
        let r = collapse(&g);
        assert_eq!(r.acfa.num_locs(), 2);
        assert!(r.acfa.is_atomic(AcfaLocId(1)));
        assert!(!r.acfa.is_atomic(AcfaLocId(0)));
    }

    #[test]
    fn havoc_capability_prevents_collapse() {
        // 0 -τ-> 1, 1 -{x}-> 0: location 1 can havoc x, 0 can too via
        // τ to 1 — weak moves make them bisimilar! Both have weak
        // {x}-move to class of 0. They merge, and the {x} edge becomes
        // a self loop.
        let regions = vec![Region::full(0); 2];
        let g = Acfa::from_parts(regions, vec![false; 2], vec![edge(0, &[], 1), edge(1, &[0], 0)]);
        let r = collapse(&g);
        assert_eq!(r.acfa.num_locs(), 1);
        assert_eq!(r.acfa.edges().len(), 1);
        let e = &r.acfa.edges()[0];
        assert_eq!(e.src, e.dst);
        assert!(e.havoc.contains(&v(0)));
    }

    #[test]
    fn distinct_havoc_sets_distinguish() {
        // 0 -{x}-> 0 and 1 -{y}-> 1 reached by 0 -τ->1 … but τ gives 0
        // the weak {y} move too, while 1 lacks {x}: split remains.
        let regions = vec![Region::full(0); 2];
        let g = Acfa::from_parts(
            regions,
            vec![false; 2],
            vec![edge(0, &[0], 0), edge(0, &[], 1), edge(1, &[1], 1)],
        );
        let r = collapse(&g);
        assert_eq!(r.acfa.num_locs(), 2);
    }

    #[test]
    fn figure2_shape_three_classes() {
        // A loop shaped like the paper's G1/A1 (iteration 1, Figure 2):
        // plain-true labels, an atomic segment that havocs state, then
        // a segment that havocs {x, state}; minimization keeps three
        // classes: I (idle), II (atomic, writes state), III (writes
        // x and state).
        //
        //   0 -τ-> 1*  (enter atomic)
        //   1* -{state}-> 2   (set state)
        //   2 -{x}-> 3        (write x)
        //   3 -{state}-> 0    (reset state)
        let regions = vec![Region::full(0); 4];
        let atomic = vec![false, true, false, false];
        let g = Acfa::from_parts(
            regions,
            atomic,
            vec![edge(0, &[], 1), edge(1, &[1], 2), edge(2, &[0], 3), edge(3, &[1], 0)],
        );
        let r = collapse(&g);
        // 0 and neither of 2,3 merge: 2 has weak {x} move, 3 has weak
        // {state} move to class(0), 0 has only τ to atomic... classes:
        // {0}, {1}, {2}, {3} minus any merges. 3 -{state}->0 vs 1
        // -{state}->2 differ by target class; expect 4 or fewer but
        // at least: atomic 1 separate, and a class that can write x.
        assert!(r.acfa.num_locs() >= 3);
        let xvar = v(0);
        let writers: Vec<_> = r.acfa.locs().filter(|q| r.acfa.writes_at(*q, xvar)).collect();
        assert_eq!(writers.len(), 1, "exactly one class may write x");
    }

    #[test]
    fn map_is_consistent_with_quotient() {
        let regions = vec![Region::full(0); 3];
        let g = Acfa::from_parts(
            regions,
            vec![false; 3],
            vec![edge(0, &[0], 1), edge(1, &[0], 2), edge(2, &[0], 0)],
        );
        let r = collapse(&g);
        assert_eq!(r.map.len(), 3);
        assert_eq!(r.map[0], r.acfa.entry());
        for m in &r.map {
            assert!(m.index() < r.acfa.num_locs());
        }
    }
}
