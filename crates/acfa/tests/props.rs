//! Randomized validation of the control-abstraction machinery: the
//! weak-bisimulation quotient must always simulate the original
//! automaton (the invariant CIRC's guarantee step relies on), be
//! idempotent, and the cube/region lattice operations must respect
//! their semantic contracts.
//!
//! Inputs are drawn from a deterministic seeded generator so failures
//! reproduce exactly; each assertion message carries the case index.

use circ_acfa::{check_sim, collapse, Acfa, AcfaEdge, AcfaLocId, Cube, PredIx, Region};
use circ_ir::Var;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeSet;

const NPREDS: usize = 2;
const NVARS: u32 = 2;
const CASES: usize = 96;

fn gen_cube(rng: &mut StdRng) -> Cube {
    let mut c = Cube::top(NPREDS);
    for i in 0..NPREDS {
        match rng.gen_range(0u32..3) {
            0 => {}
            1 => c.set(PredIx(i as u32), false),
            _ => c.set(PredIx(i as u32), true),
        }
    }
    c
}

fn gen_region(rng: &mut StdRng) -> Region {
    let mut r = Region::empty();
    for _ in 0..rng.gen_range(1usize..3) {
        r.add(gen_cube(rng));
    }
    r
}

fn gen_acfa(rng: &mut StdRng) -> Acfa {
    let n = rng.gen_range(2u32..6);
    let regions = (0..n).map(|_| gen_region(rng)).collect();
    let mut atomic: Vec<bool> = (0..n).map(|_| rng.gen_bool_uniform()).collect();
    atomic[0] = false; // entry stays non-atomic
    let edges = (0..rng.gen_range(1usize..8))
        .map(|_| {
            let src = rng.gen_range(0..n);
            let dst = rng.gen_range(0..n);
            let havoc_mask = rng.gen_range(0u32..(1 << NVARS));
            AcfaEdge {
                src: AcfaLocId(src),
                havoc: (0..NVARS)
                    .filter(|i| havoc_mask & (1 << i) != 0)
                    .map(Var::from_raw)
                    .collect::<BTreeSet<_>>(),
                dst: AcfaLocId(dst),
            }
        })
        .collect();
    Acfa::from_parts(regions, atomic, edges)
}

/// Semantic state set of a cube over boolean predicate valuations.
fn cube_admits(c: &Cube, valuation: u32) -> bool {
    c.literals().all(|(i, v)| ((valuation >> i.0) & 1 == 1) == v)
}

fn region_admits(r: &Region, valuation: u32) -> bool {
    r.cubes().iter().any(|c| cube_admits(c, valuation))
}

#[test]
fn quotient_simulates_original() {
    let mut rng = StdRng::seed_from_u64(0xacfa_0001);
    for case in 0..CASES {
        let g = gen_acfa(&mut rng);
        let q = collapse(&g);
        assert!(
            check_sim(&g, &q.acfa),
            "case {case}: the collapse quotient must weakly simulate its input: {g:?}"
        );
        assert!(q.acfa.num_locs() <= g.num_locs(), "case {case}");
        assert_eq!(q.map.len(), g.num_locs(), "case {case}");
        assert_eq!(q.map[g.entry().index()], q.acfa.entry(), "case {case}");
    }
}

/// Shrunk counterexample formerly checked in as a proptest regression
/// seed: two locations with comparable (but unequal) regions and a
/// havoc self-loop once collapsed into a quotient that failed to
/// weakly simulate the input.
#[test]
fn quotient_simulates_original_regression() {
    let mut narrow = Cube::top(NPREDS);
    narrow.set(PredIx(0), false);
    let mut r0 = Region::empty();
    r0.add(Cube::top(NPREDS));
    let mut r1 = Region::empty();
    r1.add(narrow);
    let havoc0: BTreeSet<Var> = [Var::from_raw(0)].into_iter().collect();
    let g = Acfa::from_parts(
        vec![r0, r1],
        vec![false, false],
        vec![
            AcfaEdge { src: AcfaLocId(0), havoc: havoc0.clone(), dst: AcfaLocId(1) },
            AcfaEdge { src: AcfaLocId(0), havoc: BTreeSet::new(), dst: AcfaLocId(1) },
            AcfaEdge { src: AcfaLocId(1), havoc: havoc0, dst: AcfaLocId(0) },
        ],
    );
    let q = collapse(&g);
    assert!(check_sim(&g, &q.acfa), "the collapse quotient must weakly simulate its input: {g:?}");
}

#[test]
fn collapse_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0xacfa_0002);
    for case in 0..CASES {
        let g = gen_acfa(&mut rng);
        let once = collapse(&g);
        let twice = collapse(&once.acfa);
        assert_eq!(
            once.acfa.num_locs(),
            twice.acfa.num_locs(),
            "case {case}: a quotient must be its own quotient: {g:?}"
        );
    }
}

#[test]
fn simulation_is_reflexive() {
    let mut rng = StdRng::seed_from_u64(0xacfa_0003);
    for case in 0..CASES {
        let g = gen_acfa(&mut rng);
        assert!(check_sim(&g, &g), "case {case}: {g:?}");
    }
}

#[test]
fn cube_meet_is_intersection() {
    let mut rng = StdRng::seed_from_u64(0xacfa_0004);
    for case in 0..CASES {
        let a = gen_cube(&mut rng);
        let b = gen_cube(&mut rng);
        for valuation in 0..(1u32 << NPREDS) {
            let both = cube_admits(&a, valuation) && cube_admits(&b, valuation);
            match a.meet(&b) {
                Some(m) => assert_eq!(
                    cube_admits(&m, valuation),
                    both,
                    "case {case}: meet of {a} and {b} wrong at {valuation:b}"
                ),
                None => assert!(!both, "case {case}: meet said empty but {valuation:b} is in both"),
            }
        }
    }
}

#[test]
fn cube_subsumption_is_containment() {
    let mut rng = StdRng::seed_from_u64(0xacfa_0005);
    for case in 0..CASES {
        let a = gen_cube(&mut rng);
        let b = gen_cube(&mut rng);
        if a.subsumed_by(&b) {
            for valuation in 0..(1u32 << NPREDS) {
                if cube_admits(&a, valuation) {
                    assert!(cube_admits(&b, valuation), "case {case}: {a} ⊑ {b}");
                }
            }
        }
    }
}

#[test]
fn region_union_and_containment() {
    let mut rng = StdRng::seed_from_u64(0xacfa_0006);
    for case in 0..CASES {
        let r1 = gen_region(&mut rng);
        let r2 = gen_region(&mut rng);
        let mut u = r1.clone();
        u.union(&r2);
        for valuation in 0..(1u32 << NPREDS) {
            assert_eq!(
                region_admits(&u, valuation),
                region_admits(&r1, valuation) || region_admits(&r2, valuation),
                "case {case}"
            );
        }
        // syntactic containment implies semantic containment
        if r1.contained_in(&r2) {
            for valuation in 0..(1u32 << NPREDS) {
                if region_admits(&r1, valuation) {
                    assert!(region_admits(&r2, valuation), "case {case}");
                }
            }
        }
        // both operands are contained in the union
        assert!(r1.contained_in(&u), "case {case}");
        assert!(r2.contained_in(&u), "case {case}");
    }
}

#[test]
fn region_meet_is_intersection() {
    let mut rng = StdRng::seed_from_u64(0xacfa_0007);
    for case in 0..CASES {
        let r1 = gen_region(&mut rng);
        let r2 = gen_region(&mut rng);
        let m = r1.meet(&r2);
        for valuation in 0..(1u32 << NPREDS) {
            assert_eq!(
                region_admits(&m, valuation),
                region_admits(&r1, valuation) && region_admits(&r2, valuation),
                "case {case}"
            );
        }
    }
}

#[test]
fn region_project_weakens() {
    let mut rng = StdRng::seed_from_u64(0xacfa_0008);
    for case in 0..CASES {
        let r = gen_region(&mut rng);
        let keep_mask = rng.gen_range(0u32..(1 << NPREDS));
        let p = r.project(&|i| keep_mask & (1 << i.0) != 0);
        for valuation in 0..(1u32 << NPREDS) {
            if region_admits(&r, valuation) {
                assert!(
                    region_admits(&p, valuation),
                    "case {case}: projection must over-approximate"
                );
            }
        }
    }
}
