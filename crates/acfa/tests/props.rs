//! Property-based validation of the control-abstraction machinery:
//! the weak-bisimulation quotient must always simulate the original
//! automaton (the invariant CIRC's guarantee step relies on), be
//! idempotent, and the cube/region lattice operations must respect
//! their semantic contracts.

use circ_acfa::{check_sim, collapse, Acfa, AcfaEdge, AcfaLocId, Cube, PredIx, Region};
use circ_ir::Var;
use proptest::prelude::*;
use std::collections::BTreeSet;

const NPREDS: usize = 2;
const NVARS: u32 = 2;

fn cube_strategy() -> impl Strategy<Value = Cube> {
    proptest::collection::vec(proptest::option::of(any::<bool>()), NPREDS).prop_map(|vals| {
        let mut c = Cube::top(NPREDS);
        for (i, v) in vals.into_iter().enumerate() {
            if let Some(b) = v {
                c.set(PredIx(i as u32), b);
            }
        }
        c
    })
}

fn region_strategy() -> impl Strategy<Value = Region> {
    proptest::collection::vec(cube_strategy(), 1..3).prop_map(|cubes| {
        let mut r = Region::empty();
        for c in cubes {
            r.add(c);
        }
        r
    })
}

#[derive(Debug, Clone)]
struct RawEdge {
    src: u32,
    dst: u32,
    havoc_mask: u32,
}

fn acfa_strategy() -> impl Strategy<Value = Acfa> {
    (2u32..6)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(region_strategy(), n as usize),
                proptest::collection::vec(any::<bool>(), n as usize),
                proptest::collection::vec(
                    (0..n, 0..n, 0u32..(1 << NVARS)).prop_map(|(src, dst, havoc_mask)| RawEdge {
                        src,
                        dst,
                        havoc_mask,
                    }),
                    1..8,
                ),
            )
        })
        .prop_map(|(n, regions, mut atomic, raw_edges)| {
            let _ = n;
            atomic[0] = false; // entry stays non-atomic
            let edges = raw_edges
                .into_iter()
                .map(|e| AcfaEdge {
                    src: AcfaLocId(e.src),
                    havoc: (0..NVARS)
                        .filter(|i| e.havoc_mask & (1 << i) != 0)
                        .map(Var::from_raw)
                        .collect::<BTreeSet<_>>(),
                    dst: AcfaLocId(e.dst),
                })
                .collect();
            Acfa::from_parts(regions, atomic, edges)
        })
}

/// Semantic state set of a cube over boolean predicate valuations.
fn cube_admits(c: &Cube, valuation: u32) -> bool {
    c.literals().all(|(i, v)| ((valuation >> i.0) & 1 == 1) == v)
}

fn region_admits(r: &Region, valuation: u32) -> bool {
    r.cubes().iter().any(|c| cube_admits(c, valuation))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    #[test]
    fn quotient_simulates_original(g in acfa_strategy()) {
        let q = collapse(&g);
        prop_assert!(
            check_sim(&g, &q.acfa),
            "the collapse quotient must weakly simulate its input"
        );
        prop_assert!(q.acfa.num_locs() <= g.num_locs());
        prop_assert_eq!(q.map.len(), g.num_locs());
        prop_assert_eq!(q.map[g.entry().index()], q.acfa.entry());
    }

    #[test]
    fn collapse_is_idempotent(g in acfa_strategy()) {
        let once = collapse(&g);
        let twice = collapse(&once.acfa);
        prop_assert_eq!(
            once.acfa.num_locs(),
            twice.acfa.num_locs(),
            "a quotient must be its own quotient"
        );
    }

    #[test]
    fn simulation_is_reflexive(g in acfa_strategy()) {
        prop_assert!(check_sim(&g, &g));
    }

    #[test]
    fn cube_meet_is_intersection(a in cube_strategy(), b in cube_strategy()) {
        for valuation in 0..(1u32 << NPREDS) {
            let both = cube_admits(&a, valuation) && cube_admits(&b, valuation);
            match a.meet(&b) {
                Some(m) => prop_assert_eq!(cube_admits(&m, valuation), both),
                None => prop_assert!(!both, "meet said empty but {valuation:b} is in both"),
            }
        }
    }

    #[test]
    fn cube_subsumption_is_containment(a in cube_strategy(), b in cube_strategy()) {
        if a.subsumed_by(&b) {
            for valuation in 0..(1u32 << NPREDS) {
                if cube_admits(&a, valuation) {
                    prop_assert!(cube_admits(&b, valuation));
                }
            }
        }
    }

    #[test]
    fn region_union_and_containment(r1 in region_strategy(), r2 in region_strategy()) {
        let mut u = r1.clone();
        u.union(&r2);
        for valuation in 0..(1u32 << NPREDS) {
            prop_assert_eq!(
                region_admits(&u, valuation),
                region_admits(&r1, valuation) || region_admits(&r2, valuation)
            );
        }
        // syntactic containment implies semantic containment
        if r1.contained_in(&r2) {
            for valuation in 0..(1u32 << NPREDS) {
                if region_admits(&r1, valuation) {
                    prop_assert!(region_admits(&r2, valuation));
                }
            }
        }
        // both operands are contained in the union
        prop_assert!(r1.contained_in(&u));
        prop_assert!(r2.contained_in(&u));
    }

    #[test]
    fn region_meet_is_intersection(r1 in region_strategy(), r2 in region_strategy()) {
        let m = r1.meet(&r2);
        for valuation in 0..(1u32 << NPREDS) {
            prop_assert_eq!(
                region_admits(&m, valuation),
                region_admits(&r1, valuation) && region_admits(&r2, valuation)
            );
        }
    }

    #[test]
    fn region_project_weakens(r in region_strategy(), keep_mask in 0u32..(1 << NPREDS)) {
        let p = r.project(&|i| keep_mask & (1 << i.0) != 0);
        for valuation in 0..(1u32 << NPREDS) {
            if region_admits(&r, valuation) {
                prop_assert!(region_admits(&p, valuation), "projection must over-approximate");
            }
        }
    }
}
