//! The paper's generality claim (§1: "our method applies to verifying
//! any safety property of concurrent programs"): assertion checking
//! through the same CIRC pipeline — here, mutual exclusion stated as
//! an assertion over a ghost occupancy counter.

use circ_core::{circ, CircConfig, CircOutcome, Property};
use circ_ir::MtProgram;

/// Test-and-set mutex with a ghost counter asserting exclusion.
const MUTEX_ASSERT: &str = r#"
    global int cs;
    global int state;
    #race cs;
    thread worker {
      local int old;
      loop {
        atomic {
          old = state;
          if (state == 0) { state = 1; }
        }
        if (old == 0) {
          cs = cs + 1;
          assert(cs == 1);   // mutual exclusion
          cs = cs - 1;
          state = 0;
        }
      }
    }
"#;

/// The same program with the atomicity removed: two threads enter.
const MUTEX_ASSERT_BROKEN: &str = r#"
    global int cs;
    global int state;
    #race cs;
    thread worker {
      local int old;
      loop {
        old = state;
        if (state == 0) { state = 1; }
        if (old == 0) {
          cs = cs + 1;
          assert(cs == 1);
          cs = cs - 1;
          state = 0;
        }
      }
    }
"#;

fn program(src: &str) -> MtProgram {
    let compiled = circ_frontend::compile(src).expect("compiles");
    MtProgram::new(compiled.cfa.clone(), compiled.race_vars[0])
}

fn assert_config() -> CircConfig {
    CircConfig { property: Property::Assertions, ..CircConfig::default() }
}

#[test]
fn mutual_exclusion_assertion_proved() {
    let outcome = circ(&program(MUTEX_ASSERT), &assert_config());
    let CircOutcome::Safe(report) = outcome else {
        panic!("expected Safe, got {outcome:?}");
    };
    assert_eq!(report.k, 1);
    assert!(!report.preds.is_empty(), "the proof needs data predicates");
}

#[test]
fn mutual_exclusion_assertion_proved_omega() {
    let cfg = CircConfig { property: Property::Assertions, ..CircConfig::omega() };
    assert!(circ(&program(MUTEX_ASSERT), &cfg).is_safe());
}

#[test]
fn broken_mutex_assertion_violated_with_replay() {
    let outcome = circ(&program(MUTEX_ASSERT_BROKEN), &assert_config());
    let CircOutcome::Unsafe(report) = outcome else {
        panic!("expected Unsafe, got {outcome:?}");
    };
    assert!(report.cex.replay_ok, "violation schedule must replay");
    assert!(report.cex.n_threads >= 2, "needs an interfering thread");
}

#[test]
fn assertion_and_race_are_independent_properties() {
    // The safe mutex is also race-free on cs; the broken one races.
    assert!(circ(&program(MUTEX_ASSERT), &CircConfig::default()).is_safe());
    assert!(circ(&program(MUTEX_ASSERT_BROKEN), &CircConfig::default()).is_unsafe());
}

#[test]
fn trivially_true_assertion_needs_no_predicates() {
    let src = r#"
        global int g;
        #race g;
        thread t { loop { assert(0 == 0); g = 0; } }
    "#;
    let CircOutcome::Safe(report) = circ(&program(src), &assert_config()) else {
        panic!("expected Safe");
    };
    assert!(report.preds.is_empty());
}

#[test]
fn sequentially_false_assertion_found_fast() {
    let src = r#"
        global int g;
        #race g;
        thread t { g = 1; assert(g == 0); }
    "#;
    let outcome = circ(&program(src), &assert_config());
    let CircOutcome::Unsafe(report) = outcome else {
        panic!("expected Unsafe, got {outcome:?}");
    };
    assert!(report.cex.replay_ok);
    assert_eq!(report.cex.n_threads, 1, "a single thread violates it");
}

#[test]
fn nondet_input_flows_through_the_pipeline() {
    // A sensor reading (nondet) is stored under the test-and-set flag:
    // still race-free — the abstraction treats the nondet write as a
    // havoc of the target variable.
    let src = r#"
        global int sample;
        global int state;
        #race sample;
        thread sensor {
          local int old;
          local int raw;
          loop {
            atomic {
              old = state;
              if (state == 0) { state = 1; }
            }
            if (old == 0) {
              raw = nondet();
              sample = raw;
              state = 0;
            }
          }
        }
    "#;
    let outcome = circ(&program(src), &CircConfig::omega());
    assert!(outcome.is_safe(), "got {outcome:?}");

    // Without the flag, the nondet write races; the schedule replays
    // with concrete nondet values extracted from the trace formula's
    // model.
    let racy = r#"
        global int sample;
        #race sample;
        thread sensor {
          local int raw;
          loop {
            raw = nondet();
            sample = raw;
          }
        }
    "#;
    let outcome = circ(&program(racy), &CircConfig::omega());
    let CircOutcome::Unsafe(report) = outcome else {
        panic!("expected Unsafe, got {outcome:?}");
    };
    assert!(report.cex.replay_ok);
}

#[test]
fn nondet_guarded_assertion() {
    // assert(x == x) after a nondet store: trivially true but the
    // abstraction cannot know the value — only the tautology.
    let src = r#"
        global int x;
        #race x;
        thread t {
          local int r;
          r = nondet();
          x = r;
          assert(x == x);
        }
    "#;
    let cfg = CircConfig { property: Property::Assertions, ..CircConfig::omega() };
    assert!(circ(&program(src), &cfg).is_safe());
}
