//! Corpus-wide soundness gates for the tiered triage pipeline.
//!
//! Every program the repo ships — the Table 1 models, the `examples/`
//! NesL corpus, and handwritten edge cases — goes through
//! `circ_triage::triage`, and each cheap-stage decision is re-proved
//! by an independent oracle:
//!
//! * a stage-0 `Safe` must survive exhaustive bounded concrete
//!   exploration (2 and 3 threads) *and* agree with the full CIRC
//!   engine, and
//! * a stage-1 `Race` witness must replay step-by-step to a genuine
//!   race of the concrete semantics.
//!
//! The entering-edge programs additionally cross-validate the
//! source-pc protection semantics against `circ_explicit`'s counter
//! abstraction (Algorithm 6), which models atomicity independently:
//! an access on an edge *entering* an atomic section is unprotected,
//! and a flow/lockset heuristic that credits the destination location
//! would wrongly certify it — exactly the pre-fix bug these tests pin.

use circ_baselines::flow_check;
use circ_core::{circ, CircConfig};
use circ_explicit::{race_error, verify, FiniteThread, Transition, Verdict};
use circ_ir::{CfaBuilder, Expr, Interp, MtProgram, Op};
use circ_triage::{replay_witness, triage, TriageConfig, TriageDecision};

/// Re-proves one triage decision with independent oracles. Returns
/// the stage name so callers can assert corpus coverage.
fn gate(name: &str, program: &MtProgram) -> &'static str {
    match triage(program, &TriageConfig::default()) {
        TriageDecision::Stage0Safe => {
            // The certificate claims race freedom for ANY thread
            // count; exhaustive bounded exploration at 2 and 3
            // threads must find nothing.
            for n in [2usize, 3] {
                let interp = Interp::new(program.clone(), n);
                assert!(
                    interp.explore_bounded(150_000, &[]).is_none(),
                    "{name}: stage 0 said Safe but {n}-thread exploration races"
                );
            }
            // ... and the full engine must agree.
            assert!(
                circ(program, &CircConfig::omega()).is_safe(),
                "{name}: stage 0 said Safe but CIRC disagrees"
            );
            "flow"
        }
        TriageDecision::Stage1Race(w) => {
            // The witness must replay to a genuine race on the race
            // variable — the concrete semantics is the ground truth.
            let witness = replay_witness(program, &w)
                .unwrap_or_else(|e| panic!("{name}: stage-1 witness does not replay: {e}"));
            assert_eq!(
                witness.var,
                program.race_var(),
                "{name}: stage-1 witness races the wrong variable"
            );
            "sched"
        }
        TriageDecision::Fallthrough => "circ",
    }
}

#[test]
fn table1_models_pass_the_soundness_gates() {
    for m in circ_nesc::models() {
        let stage = gate(m.name, &m.program());
        // A cheap stage may never contradict the model's known
        // verdict: stage 0 only on safe models, stage 1 only on racy
        // ones. (Fallthrough is always allowed.)
        match stage {
            "flow" => assert!(m.expected_safe, "{}: stage 0 certified a racy model", m.name),
            "sched" => assert!(!m.expected_safe, "{}: stage 1 raced a safe model", m.name),
            _ => {}
        }
    }
}

#[test]
fn examples_corpus_passes_the_gates_and_exercises_every_stage() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut stages = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "nesl"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 4, "examples corpus went missing");
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        let compiled = circ_frontend::compile(&src).expect("examples must compile");
        for &var in &compiled.race_vars {
            let program = MtProgram::new(compiled.cfa.clone(), var);
            stages.push(gate(&name, &program));
        }
    }
    // The shipped corpus is the CI smoke corpus: it must keep at
    // least one program per tier or the smoke test goes blind.
    for want in ["flow", "sched", "circ"] {
        assert!(
            stages.contains(&want),
            "no example decided at tier {want:?} — corpus lost its coverage (got {stages:?})"
        );
    }
}

// ---- entering-edge cross-validation against circ_explicit ----

/// One thread of the entering-edge shape, CFA form:
/// `entry --skip--> l1 --[g := 1]--> l2(atomic) --skip--> entry`.
/// The write sits on the edge *entering* the atomic section, so it is
/// unprotected: two threads at `l1` race.
fn entering_edge_program() -> MtProgram {
    let mut b = CfaBuilder::new("entering");
    let g = b.global("g");
    let l1 = b.fresh_loc();
    let l2 = b.fresh_loc();
    b.edge(b.entry(), Op::skip(), l1);
    b.edge(l1, Op::assign(g, Expr::int(1)), l2);
    b.mark_atomic(l2);
    b.edge(l2, Op::skip(), b.entry());
    let cfa = b.build();
    let g = cfa.var_by_name("g").unwrap();
    MtProgram::new(cfa, g)
}

/// The same machine in the explicit crate's counter abstraction:
/// pcs `0 → 1 → 2(atomic) → 0`, the `1 → 2` move writing global 0.
fn entering_edge_finite() -> FiniteThread {
    let mut t = FiniteThread::new(3, vec![2]);
    t.add(Transition::new(0, 1));
    t.add(Transition::new(1, 2).update(0, 1));
    t.add(Transition::new(2, 0));
    t.mark_atomic(2);
    t
}

/// The protected variant of both machines: the access edge *leaves*
/// an atomic location, so the pending write is invisible to the race
/// predicate and the program is safe for any thread count.
fn protected_program() -> MtProgram {
    let mut b = CfaBuilder::new("protected");
    let g = b.global("g");
    let l1 = b.fresh_loc();
    let l2 = b.fresh_loc();
    b.edge(b.entry(), Op::skip(), l1);
    b.mark_atomic(l1);
    b.edge(l1, Op::assign(g, Expr::int(1)), l2);
    b.edge(l2, Op::skip(), b.entry());
    let cfa = b.build();
    let g = cfa.var_by_name("g").unwrap();
    MtProgram::new(cfa, g)
}

fn protected_finite() -> FiniteThread {
    let mut t = FiniteThread::new(3, vec![2]);
    t.add(Transition::new(0, 1));
    t.add(Transition::new(1, 2).update(0, 1));
    t.add(Transition::new(2, 0));
    t.mark_atomic(1);
    t
}

/// Pins the source-pc protection semantics: Algorithm 6's explicit
/// counter abstraction — which shares no code with the flow checker —
/// calls the entering-edge machine racy, so `flow_check` crediting
/// the edge *destination* (the pre-fix heuristic) would certify a
/// program the ground truth refutes.
#[test]
fn entering_edge_access_races_under_both_semantics() {
    let t = entering_edge_finite();
    let err = race_error(&t, 0);
    let v = verify(&t, &err, 8, 100_000);
    assert!(matches!(v, Verdict::Unsafe { .. }), "explicit oracle must race: {v:?}");

    let program = entering_edge_program();
    assert!(
        flow_check(program.cfa()).flags(program.race_var()),
        "flow must flag the entering-edge write (dst-credit would miss it)"
    );
    assert!(
        !matches!(triage(&program, &TriageConfig::default()), TriageDecision::Stage0Safe),
        "stage 0 must not certify the entering-edge race"
    );
}

/// ... and the protected twin is safe under both semantics, so the
/// fix did not overshoot into flagging genuinely atomic accesses.
#[test]
fn leaving_edge_access_is_safe_under_both_semantics() {
    let t = protected_finite();
    let err = race_error(&t, 0);
    let v = verify(&t, &err, 8, 100_000);
    assert!(matches!(v, Verdict::Safe { .. }), "explicit oracle must prove safety: {v:?}");

    let program = protected_program();
    assert!(
        !flow_check(program.cfa()).flags(program.race_var()),
        "flow must not flag an access leaving an atomic location"
    );
    let stage = gate("protected", &program);
    assert_eq!(stage, "flow", "the protected twin is exactly a stage-0 certificate");
}
