//! The figure-regeneration pipeline (Figures 1–5) exercised as
//! assertions: the CIRC run on the paper's example produces every
//! artifact the `circ-bench` binaries print.

use circ_core::{circ, CircConfig, CircEvent, CircOutcome};
use circ_ir::{dot, figure1_cfa, MtProgram};

fn fig1_run() -> CircOutcome {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    circ(&MtProgram::new(cfa, x), &CircConfig::default())
}

#[test]
fn figure1_artifacts() {
    // (a) the source is shipped, (b) the CFA renders, (c) the final
    // ACFA resembles the paper's: an atomic location that havocs the
    // flag, a writer location labeled with the flag's value.
    assert!(circ_nesc::TEST_AND_SET.contains("atomic"));
    let cfa = figure1_cfa();
    let txt = dot::cfa_to_text(&cfa);
    assert!(txt.contains("old := state"));
    let dot_src = dot::cfa_to_dot(&cfa);
    assert!(dot_src.contains("doublecircle"), "atomic marks rendered");

    let CircOutcome::Safe(report) = fig1_run() else { panic!("fig1 must verify") };
    let x = cfa.var_by_name("x").unwrap();
    let writers: Vec<_> = report.acfa.locs().filter(|q| report.acfa.writes_at(*q, x)).collect();
    assert_eq!(writers.len(), 1, "one abstract writer location, as in Fig 1(c)");
    assert!(
        report.acfa.locs().any(|q| report.acfa.is_atomic(q)),
        "the context model keeps an atomic location (Fig 1(c)'s starred node)"
    );
    // its label is the flag invariant: the writer's region is not `true`
    let writer_region = report.acfa.region(writers[0]);
    assert!(
        writer_region.cubes().iter().all(|c| !c.is_top()),
        "the writer location carries a state-flag label"
    );
}

#[test]
fn figures_2_3_4_iteration_log() {
    let outcome = fig1_run();
    let log = outcome.log();
    // Multiple refinement iterations, each with reach + collapse, as
    // in the paper's Figures 2–4 walk-through.
    let outers = log.events.iter().filter(|e| matches!(e, CircEvent::OuterStart { .. })).count();
    assert!(outers >= 2, "figure 1 needs at least two refinement rounds");
    let collapses = log.events.iter().filter(|e| matches!(e, CircEvent::Collapsed { .. })).count();
    assert!(collapses >= 2, "each inner round minimizes an ARG");
    // ARGs render with the discovered predicates in later rounds.
    let last_reach = log
        .events
        .iter()
        .rev()
        .find_map(|e| match e {
            CircEvent::ReachDone { arg, .. } => Some(arg.clone()),
            _ => None,
        })
        .expect("at least one reach");
    assert!(last_reach.contains("state"), "late ARGs carry flag labels:\n{last_reach}");
}

#[test]
fn figure5_refinement_artifacts() {
    let outcome = fig1_run();
    // Some refinement round must expose: a concrete interleaving, a
    // trace formula, and mined predicates — the three columns of
    // Figure 5.
    let found = outcome.log().events.iter().any(|e| {
        matches!(e, CircEvent::Refined { detail, .. }
            if !detail.interleaving.is_empty()
                && !detail.trace_formula.is_empty()
                && !detail.mined_preds.is_empty())
    });
    assert!(found, "no refinement round produced the Figure 5 artifacts");
    assert!(outcome.is_safe());
}

#[test]
fn figure5_multithreaded_round_exists() {
    // The paper's Figure 5 trace interleaves two threads; our run
    // must also hit at least one multi-thread refinement.
    let outcome = fig1_run();
    let found = outcome.log().events.iter().any(|e| {
        matches!(e, CircEvent::Refined { detail, .. } if {
            let tags: std::collections::BTreeSet<usize> =
                detail.interleaving.iter().map(|(t, _)| *t).collect();
            tags.len() >= 2
        })
    });
    assert!(found, "expected an interleaving-sensitive refinement round");
}
