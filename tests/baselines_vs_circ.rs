//! The paper's comparison claim (§1, §6): the flow-based and lockset
//! baselines false-positive on state-variable synchronization idioms
//! that CIRC proves race-free — while all three detect genuinely racy
//! code.

use circ_baselines::{eraser, flow_check};
use circ_core::{circ, CircConfig};

/// Safe idioms the baselines cannot understand (every access outside
/// an atomic section, protected by data rather than locks).
const FALSE_POSITIVE_IDIOMS: &[&str] = &[
    "test_and_set",
    "running_crc",
    "conditional_lock",
    "multi_state",
    "split_phase",
    "interrupt_state",
];

/// Safe idioms the baselines *do* understand (atomic-section
/// protected).
const TRUE_NEGATIVE_IDIOMS: &[&str] = &["atomic_only", "task_only"];

#[test]
fn flow_baseline_false_positives_on_state_idioms() {
    for name in FALSE_POSITIVE_IDIOMS {
        let m = circ_nesc::model(name).unwrap();
        let program = m.program();
        let report = flow_check(program.cfa());
        assert!(
            report.flags(program.race_var()),
            "{name}: the flow baseline should flag this (false positive)"
        );
        // …and CIRC proves it safe.
        assert!(
            circ(&program, &CircConfig::omega()).is_safe(),
            "{name}: CIRC must prove the idiom safe"
        );
    }
}

#[test]
fn flow_baseline_clean_on_atomic_idioms() {
    for name in TRUE_NEGATIVE_IDIOMS {
        let m = circ_nesc::model(name).unwrap();
        let program = m.program();
        let report = flow_check(program.cfa());
        assert!(!report.flags(program.race_var()), "{name}: no finding expected");
    }
}

#[test]
fn lockset_baseline_false_positives_on_state_idioms() {
    for name in FALSE_POSITIVE_IDIOMS {
        let m = circ_nesc::model(name).unwrap();
        let program = m.program();
        let report = eraser(&program, 3, 600, 12, 99);
        assert!(
            report.flags(program.race_var()),
            "{name}: the lockset baseline should warn (false positive)"
        );
    }
}

#[test]
fn lockset_baseline_clean_on_atomic_idioms() {
    for name in TRUE_NEGATIVE_IDIOMS {
        let m = circ_nesc::model(name).unwrap();
        let program = m.program();
        let report = eraser(&program, 3, 600, 12, 99);
        assert!(!report.flags(program.race_var()), "{name}: no warning expected");
    }
}

#[test]
fn all_three_flag_genuinely_racy_code() {
    for m in circ_nesc::models().iter().filter(|m| !m.expected_safe) {
        let program = m.program();
        assert!(
            flow_check(program.cfa()).flags(program.race_var()),
            "{}: flow baseline misses the bug",
            m.name
        );
        assert!(
            circ(&program, &CircConfig::omega()).is_unsafe(),
            "{}: CIRC misses the bug",
            m.name
        );
    }
}
