//! Workspace-level reproduction test for **Table 1**: every benchmark
//! idiom gets the verdict the paper reports, in both CIRC modes, with
//! the paper's qualitative shape (counter parameter 1, small
//! predicate sets, compact ACFAs).

use circ_core::{circ, CircConfig, CircOutcome};

#[test]
fn every_table1_row_verifies_in_omega_mode() {
    for m in circ_nesc::models().iter().filter(|m| m.expected_safe) {
        let program = m.program();
        let outcome = circ(&program, &CircConfig::omega());
        let CircOutcome::Safe(report) = outcome else {
            panic!("{}: expected Safe, got {outcome:?}", m.name);
        };
        // Table 1: "The counter parameter was always 1."
        assert_eq!(report.k, 1, "{}: k must stay 1", m.name);
        // Predicate counts stay small (paper: 0–11).
        assert!(
            report.preds.len() <= 12,
            "{}: too many predicates ({})",
            m.name,
            report.preds.len()
        );
        // The context model is smaller than the thread's CFA.
        assert!(
            report.acfa.num_locs() <= program.cfa().num_locs(),
            "{}: ACFA ({}) should not exceed the CFA ({})",
            m.name,
            report.acfa.num_locs(),
            program.cfa().num_locs()
        );
        // Trivially safe rows need no predicates at all (paper's
        // gTxProto and gRxTailIndex).
        if m.paper_rows.iter().any(|r| r.preds == 0) {
            assert!(report.preds.is_empty(), "{}: expected a trivial proof", m.name);
        }
    }
}

#[test]
fn every_table1_row_verifies_in_plain_mode() {
    for m in circ_nesc::models().iter().filter(|m| m.expected_safe) {
        let program = m.program();
        let outcome = circ(&program, &CircConfig::default());
        assert!(outcome.is_safe(), "{}: expected Safe, got {outcome:?}", m.name);
    }
}

#[test]
fn buggy_variants_produce_replayable_races() {
    for m in circ_nesc::models().iter().filter(|m| !m.expected_safe) {
        for cfg in [CircConfig::default(), CircConfig::omega()] {
            let program = m.program();
            let outcome = circ(&program, &cfg);
            let CircOutcome::Unsafe(report) = outcome else {
                panic!("{}: expected Unsafe, got {outcome:?}", m.name);
            };
            assert!(report.cex.replay_ok, "{}: schedule must replay concretely", m.name);
            assert!(report.cex.n_threads >= 2, "{}: a race needs two threads", m.name);
        }
    }
}

#[test]
fn omega_mode_is_not_slower_by_more_than_10x() {
    // The paper says ∞-CIRC is "considerably faster" than CIRC; at
    // our scale both are fast, so just guard against the optimization
    // being pathologically wrong.
    use std::time::Instant;
    for name in ["test_and_set", "conditional_lock"] {
        let m = circ_nesc::model(name).unwrap();
        let program = m.program();
        let t0 = Instant::now();
        assert!(circ(&program, &CircConfig::default()).is_safe());
        let plain = t0.elapsed();
        let t1 = Instant::now();
        assert!(circ(&program, &CircConfig::omega()).is_safe());
        let omega = t1.elapsed();
        assert!(omega <= plain * 10, "{name}: omega-CIRC took {omega:?} vs plain {plain:?}");
    }
}

#[test]
fn safe_reports_expose_the_inferred_context() {
    let m = circ_nesc::model("test_and_set").unwrap();
    let program = m.program();
    let CircOutcome::Safe(report) = circ(&program, &CircConfig::omega()) else {
        panic!("expected Safe");
    };
    // The inferred ACFA must actually write the race variable
    // somewhere (a context that cannot touch `x` would prove nothing
    // interesting) and must carry a state-flag label.
    let x = program.race_var();
    assert!(
        report.acfa.locs().any(|q| report.acfa.writes_at(q, x)),
        "context model must model writers of x"
    );
    let state = program.cfa().var_by_name("state").unwrap();
    assert!(
        report.preds.iter().any(|p| p.vars().contains(&state)),
        "discovered predicates must track the guard flag: {:?}",
        report.preds
    );
}
