//! Parallel determinism: for every corpus program and every Table 1
//! model, a `--jobs 4` run must be *bit-identical* to the `--jobs 1`
//! run — the same verdict essence (predicates, counterexample, final
//! ACFA, k), the same ARG sizes, and the same merged statistics
//! counters (solver queries, cache hits/misses, sim pairs, …). Only
//! the phase wall-times may differ.
//!
//! This is the executable form of the design argument in `DESIGN.md`:
//! batched frontier expansion commits in sequential order, sharded
//! caches compute under the shard lock (one miss per distinct key
//! under any interleaving), and CheckSim's Jacobi passes are pure
//! functions of the previous relation.

use circ_core::{circ, CircConfig, CircOutcome, PipelineStats};
use circ_ir::{BoolExpr, CfaBuilder, Expr, MtProgram, Op};

/// Everything verdict-relevant in an outcome; deliberately excludes
/// statistics and timings.
fn essence(outcome: &CircOutcome) -> String {
    match outcome {
        CircOutcome::Safe(r) => {
            format!("Safe preds={:?} k={} acfa={:?}", r.preds, r.k, r.acfa)
        }
        CircOutcome::Unsafe(r) => format!("Unsafe cex={:?} k={}", r.cex, r.k),
        CircOutcome::Unknown(r) => format!("Unknown reason={:?}", r.reason),
    }
}

/// The run's counters with the wall-clock spans zeroed: everything
/// here must be jobs-invariant.
fn counters(outcome: &CircOutcome) -> PipelineStats {
    let mut p = outcome.stats().pipeline.clone();
    p.phases = Default::default();
    p
}

fn assert_jobs_invariant(name: &str, program: &MtProgram, base: &CircConfig) {
    let seq = circ(program, &CircConfig { jobs: 1, ..base.clone() });
    let par = circ(program, &CircConfig { jobs: 4, ..base.clone() });
    assert_eq!(
        essence(&seq),
        essence(&par),
        "{name}: jobs=4 changed the verdict (omega={})",
        base.omega_mode
    );
    assert_eq!(
        counters(&seq),
        counters(&par),
        "{name}: jobs=4 changed the statistics counters (omega={})",
        base.omega_mode
    );
}

/// Unprotected concurrent increments: racy.
fn unprotected_counter() -> MtProgram {
    let mut b = CfaBuilder::new("counter");
    let x = b.global("x");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    b.edge(l1, Op::assign(x, Expr::var(x) + Expr::int(1)), l2);
    b.edge(l2, Op::skip(), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// x only ever written inside atomic blocks: safe with zero predicates.
fn atomic_only() -> MtProgram {
    let mut b = CfaBuilder::new("atomic_only");
    let x = b.global("x");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    let l3 = b.fresh_loc();
    b.edge(l1, Op::skip(), l2);
    b.mark_atomic(l2);
    b.edge(l2, Op::assign(x, Expr::var(x) + Expr::int(1)), l3);
    b.edge(l3, Op::skip(), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

/// Figure 1 with the atomic marks removed: the test-and-set is racy.
fn broken_fig1() -> MtProgram {
    let mut b = CfaBuilder::new("broken");
    let x = b.global("x");
    let state = b.global("state");
    let old = b.local("old");
    let l1 = b.entry();
    let l2 = b.fresh_loc();
    let l3 = b.fresh_loc();
    let l5 = b.fresh_loc();
    let l6 = b.fresh_loc();
    let l7 = b.fresh_loc();
    b.edge(l1, Op::assign(old, Expr::var(state)), l2);
    b.edge(l2, Op::assume(BoolExpr::eq(Expr::var(state), Expr::int(0))), l3);
    b.edge(l3, Op::assign(state, Expr::int(1)), l5);
    b.edge(l2, Op::assume(BoolExpr::ne(Expr::var(state), Expr::int(0))), l5);
    b.edge(l5, Op::assume(BoolExpr::eq(Expr::var(old), Expr::int(0))), l6);
    b.edge(l5, Op::assume(BoolExpr::ne(Expr::var(old), Expr::int(0))), l1);
    b.edge(l6, Op::assign(x, Expr::var(x) + Expr::int(1)), l7);
    b.edge(l7, Op::assign(state, Expr::int(0)), l1);
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

fn fig1_program() -> MtProgram {
    let cfa = circ_ir::figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

#[test]
fn examples_corpus_is_jobs_invariant_in_both_modes() {
    let corpus = [
        ("figure1", fig1_program()),
        ("broken_fig1", broken_fig1()),
        ("atomic_only", atomic_only()),
        ("unprotected_counter", unprotected_counter()),
    ];
    for omega in [false, true] {
        let base = if omega { CircConfig::omega() } else { CircConfig::default() };
        for (name, program) in &corpus {
            assert_jobs_invariant(name, program, &base);
        }
    }
}

#[test]
fn table1_models_are_jobs_invariant() {
    for m in circ_nesc::models() {
        assert_jobs_invariant(m.name, &m.program(), &CircConfig::omega());
    }
}

#[test]
fn jobs_zero_means_auto_and_stays_invariant() {
    let program = fig1_program();
    let seq = circ(&program, &CircConfig::omega());
    let auto = circ(&program, &CircConfig { jobs: 0, ..CircConfig::omega() });
    assert_eq!(essence(&seq), essence(&auto));
    assert_eq!(counters(&seq), counters(&auto));
}

// ---- batch-level determinism ----

/// Zeroes every `"time...":<number>` value in a JSON report. All of
/// the batch report's wall-time keys — the per-row `time_s` and the
/// pipeline's `time_reach_s`/`time_sim_s`/… — start with `time`, so
/// one scanner strips them all.
fn strip_times(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(ix) = rest.find("\"time") {
        let Some(key_len) = rest[ix + 1..].find('"') else { break };
        let key_end = ix + 1 + key_len + 1;
        let Some(colon) = rest[key_end..].find(':') else { break };
        let val_start = key_end + colon + 1;
        let val_len = rest[val_start..].find([',', '}']).unwrap_or(rest.len() - val_start);
        out.push_str(&rest[..val_start]);
        out.push('0');
        rest = &rest[val_start + val_len..];
    }
    out.push_str(rest);
    out
}

fn examples_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

#[test]
fn batch_report_is_jobs_invariant_modulo_wall_times() {
    let inputs = circ_batch::collect_inputs(&examples_dir()).unwrap();
    assert!(inputs.len() >= 4, "examples corpus went missing");
    let base = circ_batch::BatchConfig::default();
    let seq = circ_batch::run_batch(&inputs, &circ_batch::BatchConfig { jobs: 1, ..base.clone() });
    let par = circ_batch::run_batch(&inputs, &circ_batch::BatchConfig { jobs: 4, ..base });
    assert_eq!(seq.exit, par.exit);
    let (seq_json, par_json) = (strip_times(&seq.to_json()), strip_times(&par.to_json()));
    assert_eq!(seq_json, par_json, "jobs=4 changed the batch report bytes");
    // The scanner really did find wall times (guards against key renames
    // silently turning this test into a tautology-by-luck).
    assert_ne!(seq_json, seq.to_json(), "no time keys were stripped — scanner is stale");
}

// ---- crash-safety determinism ----

/// Interrupting a batch and resuming it must land on exactly the
/// uninterrupted run's verdicts: the journal replays the files that
/// finished before the interrupt, the rest are re-checked, and the
/// deterministic pipeline makes the re-checks indistinguishable from
/// the originals.
#[test]
fn interrupted_then_resumed_batch_matches_uninterrupted() {
    let inputs = circ_batch::collect_inputs(&examples_dir()).unwrap();
    assert!(inputs.len() >= 3, "need a corpus big enough to interrupt mid-run");
    let journal = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("determinism-interrupt-journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    let baseline = circ_batch::run_batch(&inputs, &circ_batch::BatchConfig::default());

    // "Interrupt" deterministically: trip the cancel token after two
    // completions, exactly what the SIGINT handler does mid-run.
    let interrupted = circ_batch::run_batch(
        &inputs,
        &circ_batch::BatchConfig {
            journal: Some(journal.clone()),
            cancel_after: Some(2),
            jobs: 1,
            ..circ_batch::BatchConfig::default()
        },
    );
    assert_eq!(interrupted.exit, 3, "a drained run exits as budget-exhausted");
    let cancelled = interrupted.rows.iter().filter(|r| r.cancelled).count();
    assert!(cancelled > 0, "nothing was actually interrupted");
    assert_eq!(interrupted.totals.cancelled, cancelled as u64);

    let resumed = circ_batch::run_batch(
        &inputs,
        &circ_batch::BatchConfig {
            journal: Some(journal.clone()),
            resume: true,
            ..circ_batch::BatchConfig::default()
        },
    );
    assert_eq!(resumed.totals.resumed, 2, "the two journaled rows must replay");
    let essence = |r: &circ_batch::BatchReport| {
        r.rows
            .iter()
            .map(|row| (row.file.clone(), row.verdict, row.detail.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(essence(&baseline), essence(&resumed), "resume changed a verdict");
    assert_eq!(baseline.exit, resumed.exit);
}

/// Replaying an untouched journal is byte-stable: a second resume over
/// the same inputs renders the identical report, wall-times included,
/// because every row now comes verbatim from the journal.
#[test]
fn journal_replay_is_byte_stable() {
    let inputs = circ_batch::collect_inputs(&examples_dir()).unwrap();
    let journal = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("determinism-replay-journal.jsonl");
    let _ = std::fs::remove_file(&journal);
    let cfg = circ_batch::BatchConfig {
        journal: Some(journal.clone()),
        resume: true,
        ..circ_batch::BatchConfig::default()
    };
    // First resume over a missing journal degrades to a cold run that
    // writes the journal; the next two replay it end to end.
    let first = circ_batch::run_batch(&inputs, &cfg);
    let second = circ_batch::run_batch(&inputs, &cfg);
    let third = circ_batch::run_batch(&inputs, &cfg);
    assert_eq!(second.totals.resumed as usize, inputs.len());
    assert_eq!(second.to_json(), third.to_json(), "journal replay is not byte-stable");
    // Replayed rows reproduce the journaled originals byte-for-byte —
    // wall-times included, because `time_s` round-trips through the
    // journal's fixed 6-decimal rendering. (The report *totals* are
    // allowed to differ: they count how many rows were resumed.)
    let rows = |r: &circ_batch::BatchReport| {
        r.rows.iter().map(circ_batch::render_row_json).collect::<Vec<_>>()
    };
    assert_eq!(rows(&first), rows(&second), "replay changed a row");
}

/// A journal written under one configuration must never seed a resume
/// under another: the journal rows carry a config fingerprint, and a
/// resume with a different `--k` (or `--omega`, budget, …) degrades
/// every mismatched row to a re-check. The re-checked report must be
/// indistinguishable from a fresh uninterrupted run under the *new*
/// configuration — resuming is an optimization, never a way to smuggle
/// stale verdicts across a config change.
#[test]
fn resume_under_different_config_rechecks_every_row() {
    let inputs = circ_batch::collect_inputs(&examples_dir()).unwrap();
    assert!(inputs.len() >= 3, "need a corpus big enough to interrupt mid-run");
    let journal = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("determinism-config-skew-journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Interrupt a journaled run under the default configuration so the
    // journal holds rows checked with `initial_k = 1`.
    let interrupted = circ_batch::run_batch(
        &inputs,
        &circ_batch::BatchConfig {
            journal: Some(journal.clone()),
            cancel_after: Some(2),
            jobs: 1,
            ..circ_batch::BatchConfig::default()
        },
    );
    assert_eq!(interrupted.exit, 3, "a drained run exits as budget-exhausted");
    assert!(journal.exists(), "the interrupted run must have journaled its completions");

    // Resume under a different configuration: every journaled row's
    // fingerprint mismatches, so nothing may replay.
    let skewed = circ_batch::BatchConfig {
        journal: Some(journal.clone()),
        resume: true,
        initial_k: 3,
        ..circ_batch::BatchConfig::default()
    };
    let resumed = circ_batch::run_batch(&inputs, &skewed);
    assert_eq!(
        resumed.totals.resumed, 0,
        "rows journaled under another configuration must never replay"
    );
    assert!(
        resumed.warnings.iter().any(|w| w.contains("different configuration")),
        "the degradation must be explained in the warnings: {:?}",
        resumed.warnings
    );

    // And the re-checked report matches a fresh run under the new
    // configuration, row for row.
    let fresh = circ_batch::run_batch(
        &inputs,
        &circ_batch::BatchConfig { initial_k: 3, ..circ_batch::BatchConfig::default() },
    );
    let essence = |r: &circ_batch::BatchReport| {
        r.rows
            .iter()
            .map(|row| (row.file.clone(), row.verdict, row.detail.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(essence(&fresh), essence(&resumed), "config skew leaked a stale verdict");
    assert_eq!(fresh.exit, resumed.exit);
}

/// The predicate store makes warm re-checks cheaper without touching
/// verdicts, and its counters (`preds_seeded`, `refine_rounds_saved`)
/// are as jobs-invariant as every other statistic: two warm runs over
/// identical store snapshots render the same rows and totals at
/// `--jobs 1` and `--jobs 4`, modulo wall times.
#[test]
fn pred_store_seeding_cuts_rounds_and_stays_jobs_invariant() {
    let inputs = circ_batch::collect_inputs(&examples_dir()).unwrap();
    let tmp = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let dir_a = tmp.join("determinism-pred-store-a");
    let dir_b = tmp.join("determinism-pred-store-b");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    // Cold run populates the caches and the predicate store in `dir_a`.
    let cfg = |dir: &std::path::Path, jobs: usize| circ_batch::BatchConfig {
        cache_dir: Some(dir.to_path_buf()),
        jobs,
        ..circ_batch::BatchConfig::default()
    };
    let cold = circ_batch::run_batch(&inputs, &cfg(&dir_a, 1));
    assert_eq!(cold.totals.pipeline.preds_seeded, 0, "nothing to seed from on a cold start");
    assert_eq!(cold.totals.pipeline.refine_rounds_saved, 0);
    let saved = cold.cache.as_ref().expect("cache dir was set").preds_saved;
    assert!(saved > 0, "the cold run must record what it discovered");

    // Snapshot the cache directory so both warm runs seed from the
    // *same* store bytes (a warm run re-saves the store, so running
    // twice against one directory would compare different snapshots).
    std::fs::create_dir_all(&dir_b).unwrap();
    for entry in std::fs::read_dir(&dir_a).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir_b.join(entry.file_name())).unwrap();
    }

    let warm_seq = circ_batch::run_batch(&inputs, &cfg(&dir_a, 1));
    let warm_par = circ_batch::run_batch(&inputs, &cfg(&dir_b, 4));

    // Seeding engaged and paid off.
    assert!(warm_seq.totals.pipeline.preds_seeded > 0, "store did not seed");
    assert!(
        warm_seq.totals.pipeline.refine_rounds < cold.totals.pipeline.refine_rounds,
        "seeding must cut refinement rounds (warm {} vs cold {})",
        warm_seq.totals.pipeline.refine_rounds,
        cold.totals.pipeline.refine_rounds
    );

    // ... without touching any verdict.
    let essence = |r: &circ_batch::BatchReport| {
        r.rows
            .iter()
            .map(|row| (row.file.clone(), row.verdict, row.detail.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(essence(&cold), essence(&warm_seq), "seeding changed a verdict");
    assert_eq!(cold.exit, warm_seq.exit);

    // Jobs-invariance: identical snapshot in, identical rows and
    // counters out (the cache summary differs only in its `dir` path,
    // so compare rows and totals rather than the whole report).
    let rows = |r: &circ_batch::BatchReport| {
        r.rows.iter().map(|row| strip_times(&circ_batch::render_row_json(row))).collect::<Vec<_>>()
    };
    assert_eq!(rows(&warm_seq), rows(&warm_par), "jobs=4 changed a warm row");
    let totals = |r: &circ_batch::BatchReport| {
        let mut p = r.totals.pipeline.clone();
        p.phases = Default::default();
        p
    };
    assert_eq!(
        totals(&warm_seq),
        totals(&warm_par),
        "jobs=4 changed the seeded-run statistics counters"
    );
    assert_eq!(warm_seq.totals.pipeline.preds_seeded, warm_par.totals.pipeline.preds_seeded);
    assert_eq!(
        warm_seq.totals.pipeline.refine_rounds_saved,
        warm_par.totals.pipeline.refine_rounds_saved
    );
}

/// The tiered triage pipeline is a pure function of each program (its
/// schedules come from fixed seeds), so a `--triage` batch report —
/// rows, stage attributions, and the three triage counters — must be
/// byte-identical at any `--jobs`, and the counters must partition
/// the corpus's race variables exactly.
#[test]
fn triage_batch_is_jobs_invariant_and_counters_partition() {
    let inputs = circ_batch::collect_inputs(&examples_dir()).unwrap();
    let base = circ_batch::BatchConfig { triage: true, ..circ_batch::BatchConfig::default() };
    let seq = circ_batch::run_batch(&inputs, &circ_batch::BatchConfig { jobs: 1, ..base.clone() });
    let par = circ_batch::run_batch(&inputs, &circ_batch::BatchConfig { jobs: 4, ..base.clone() });
    assert_eq!(seq.exit, par.exit);
    let (seq_json, par_json) = (strip_times(&seq.to_json()), strip_times(&par.to_json()));
    assert_eq!(seq_json, par_json, "jobs=4 changed the triage batch report bytes");

    // The stage counters partition the race variables: every variable
    // is decided by exactly one tier, and the attribution column
    // agrees with the counters row by row.
    let p = &seq.totals.pipeline;
    let race_vars: u64 = seq
        .rows
        .iter()
        .flat_map(|r| r.stage.split('+'))
        .filter(|s| !s.is_empty() && *s != "-")
        .count() as u64;
    assert_eq!(
        p.triage_stage0_decided + p.triage_stage1_decided + p.triage_fallthrough,
        race_vars,
        "triage counters must partition the corpus's race variables"
    );
    let count = |tier: &str| {
        seq.rows.iter().flat_map(|r| r.stage.split('+')).filter(|s| *s == tier).count() as u64
    };
    assert_eq!(count("flow"), p.triage_stage0_decided);
    assert_eq!(count("sched"), p.triage_stage1_decided);
    assert_eq!(count("circ"), p.triage_fallthrough);

    // And triage never changes a verdict relative to the full run.
    let full = circ_batch::run_batch(&inputs, &circ_batch::BatchConfig::default());
    let verdicts = |r: &circ_batch::BatchReport| {
        r.rows.iter().map(|row| (row.file.clone(), row.verdict)).collect::<Vec<_>>()
    };
    assert_eq!(verdicts(&full), verdicts(&seq), "triage changed a verdict");
    assert_eq!(full.exit, seq.exit);
}

#[test]
fn warm_batch_matches_cold_verdicts_with_fewer_misses() {
    let inputs = circ_batch::collect_inputs(&examples_dir()).unwrap();
    let cache_dir =
        std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("determinism-batch-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cfg = circ_batch::BatchConfig {
        cache_dir: Some(cache_dir.clone()),
        ..circ_batch::BatchConfig::default()
    };
    let cold = circ_batch::run_batch(&inputs, &cfg);
    let warm = circ_batch::run_batch(&inputs, &cfg);
    assert_eq!(cold.exit, warm.exit);
    let verdicts = |r: &circ_batch::BatchReport| {
        r.rows.iter().map(|row| (row.file.clone(), row.verdict)).collect::<Vec<_>>()
    };
    assert_eq!(verdicts(&cold), verdicts(&warm), "warm cache changed a verdict");
    assert!(
        warm.totals.pipeline.abs.cache_misses < cold.totals.pipeline.abs.cache_misses,
        "warm batch must miss strictly less (warm {} vs cold {})",
        warm.totals.pipeline.abs.cache_misses,
        cold.totals.pipeline.abs.cache_misses
    );
    assert!(warm.warnings.is_empty(), "clean caches must load silently: {:?}", warm.warnings);
}
