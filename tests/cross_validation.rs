//! Randomized cross-validation of the whole checker against the
//! concrete semantics: on randomly generated thread templates,
//!
//! * a `Safe` verdict implies bounded concrete exploration (2 and 3
//!   threads, exhaustive up to a state budget) finds no race, and
//! * an `Unsafe` verdict's schedule must replay to a genuine race.
//!
//! The generator emits small flag-machine threads — the shape of the
//! benchmark idioms — so a decent fraction of cases exercise both
//! verdicts. Inputs come from a deterministic seeded generator so
//! failures reproduce exactly.

use circ_core::{circ, CircConfig, CircOutcome};
use circ_ir::{BoolExpr, CfaBuilder, Expr, Interp, MtProgram, Op};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Blueprint of one random thread: a loop of "phases"; each phase
/// optionally guards on a flag value, optionally atomically, then
/// writes the shared variable and updates the flag.
#[derive(Debug, Clone)]
struct Blueprint {
    phases: Vec<Phase>,
}

#[derive(Debug, Clone)]
struct Phase {
    /// Guard: `Some((flag_value, atomic))` tests `flag == value`
    /// (and sets it to `set_after`), possibly atomically.
    guard: Option<(i64, bool)>,
    /// Value the flag is set to after the guard.
    set_after: i64,
    /// Whether this phase writes the race variable.
    writes_x: bool,
    /// Value the flag is set to at the end of the phase.
    reset_to: i64,
}

fn gen_phase(rng: &mut StdRng) -> Phase {
    let guard = if rng.gen_bool_uniform() {
        Some((rng.gen_range(0i64..2), rng.gen_bool_uniform()))
    } else {
        None
    };
    Phase {
        guard,
        set_after: rng.gen_range(0i64..2),
        writes_x: rng.gen_bool_uniform(),
        reset_to: rng.gen_range(0i64..2),
    }
}

fn gen_blueprint(rng: &mut StdRng) -> Blueprint {
    Blueprint { phases: (0..rng.gen_range(1usize..3)).map(|_| gen_phase(rng)).collect() }
}

fn build(bp: &Blueprint) -> MtProgram {
    let mut b = CfaBuilder::new("random");
    let x = b.global("x");
    let flag = b.global("flag");
    let mut cur = b.entry();
    for phase in &bp.phases {
        if let Some((val, atomic)) = phase.guard {
            // optional atomic test-and-set of the flag
            let enter = b.fresh_loc();
            b.edge(cur, Op::skip(), enter);
            let took = b.fresh_loc();
            let skipped = b.fresh_loc();
            b.edge(enter, Op::assume(BoolExpr::eq(Expr::var(flag), Expr::int(val))), took);
            b.edge(enter, Op::assume(BoolExpr::ne(Expr::var(flag), Expr::int(val))), skipped);
            let set = b.fresh_loc();
            b.edge(took, Op::assign(flag, Expr::int(phase.set_after)), set);
            if atomic {
                b.mark_atomic(enter);
                b.mark_atomic(took);
                b.mark_atomic(skipped);
            }
            let join = b.fresh_loc();
            b.edge(skipped, Op::skip(), join);
            // the guarded body
            let mut body = set;
            if phase.writes_x {
                let after = b.fresh_loc();
                b.edge(body, Op::assign(x, Expr::var(x) + Expr::int(1)), after);
                body = after;
            }
            let done = b.fresh_loc();
            b.edge(body, Op::assign(flag, Expr::int(phase.reset_to)), done);
            b.edge(done, Op::skip(), join);
            cur = join;
        } else if phase.writes_x {
            let after = b.fresh_loc();
            b.edge(cur, Op::assign(x, Expr::var(x) + Expr::int(1)), after);
            cur = after;
        }
    }
    // loop back
    b.edge(cur, Op::skip(), b.entry());
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    MtProgram::new(cfa, x)
}

#[test]
fn circ_verdicts_agree_with_concrete_semantics() {
    let mut rng = StdRng::seed_from_u64(0xc205_5001);
    for case in 0..24 {
        let bp = gen_blueprint(&mut rng);
        let program = build(&bp);
        let cfg =
            CircConfig { max_outer: 12, max_inner: 12, max_states: 60_000, ..CircConfig::omega() };
        match circ(&program, &cfg) {
            CircOutcome::Safe(_) => {
                // exhaustive concrete exploration must agree
                for n in [2usize, 3] {
                    let interp = Interp::new(program.clone(), n);
                    assert!(
                        interp.explore_bounded(150_000, &[]).is_none(),
                        "case {case}: CIRC said Safe but {n}-thread exploration races: {bp:?}"
                    );
                }
            }
            CircOutcome::Unsafe(report) => {
                assert!(
                    report.cex.replay_ok,
                    "case {case}: Unsafe verdict must come with a replayable schedule: {bp:?}"
                );
            }
            CircOutcome::Unknown(_) => {
                // Bounded resources: inconclusive runs are acceptable
                // for random inputs, never wrong.
            }
        }
    }
}

#[test]
fn handwritten_edge_cases() {
    // Thread that never touches x: trivially safe.
    let mut b = CfaBuilder::new("idle");
    let x = b.global("x");
    let l = b.fresh_loc();
    b.edge(b.entry(), Op::skip(), l);
    b.edge(l, Op::skip(), b.entry());
    let cfa = b.build();
    let program = MtProgram::new(cfa, x);
    assert!(circ(&program, &CircConfig::omega()).is_safe());

    // Thread that only reads x: reads alone never race.
    let mut b = CfaBuilder::new("reader");
    let x = b.global("x");
    let tmp = b.local("tmp");
    let l = b.fresh_loc();
    b.edge(b.entry(), Op::assign(tmp, Expr::var(x)), l);
    b.edge(l, Op::skip(), b.entry());
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    let program = MtProgram::new(cfa, x);
    assert!(circ(&program, &CircConfig::omega()).is_safe());

    // One unprotected write: two copies race.
    let mut b = CfaBuilder::new("writer");
    let x = b.global("x");
    let l = b.fresh_loc();
    b.edge(b.entry(), Op::assign(x, Expr::int(1)), l);
    b.edge(l, Op::skip(), b.entry());
    let cfa = b.build();
    let x = cfa.var_by_name("x").unwrap();
    let program = MtProgram::new(cfa, x);
    let outcome = circ(&program, &CircConfig::omega());
    let CircOutcome::Unsafe(r) = outcome else { panic!("expected Unsafe, got {outcome:?}") };
    assert!(r.cex.replay_ok);
}
