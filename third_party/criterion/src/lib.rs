//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements the slice of the criterion 0.5 API the
//! workspace's `benches/` use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! wall-clock mean over `sample_size` runs after one warm-up — enough
//! to track relative regressions by eye, with no statistics engine.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (defers to [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// A bare parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured mean duration of the routine, filled in by [`iter`].
    ///
    /// [`iter`]: Bencher::iter
    elapsed: Duration,
    samples: usize,
}

impl Bencher {
    /// Runs `routine` once as warm-up, then `samples` measured times,
    /// recording the mean wall-clock duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = t0.elapsed() / self.samples as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { elapsed: Duration::ZERO, samples: self.samples };
        f(&mut b);
        println!("{}/{id}: {:>12.2?} (mean of {})", self.name, b.elapsed, self.samples);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { elapsed: Duration::ZERO, samples: self.samples };
        f(&mut b, input);
        println!("{}/{id}: {:>12.2?} (mean of {})", self.name, b.elapsed, self.samples);
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(&mut self) {}
}

/// The top-level bench context handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), samples: 10, _criterion: self }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
