//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! tiny vendored crate provides the (small) subset of the `rand` 0.8
//! API the workspace actually uses: a seedable deterministic generator
//! (`rngs::StdRng`), `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer ranges. The generator is SplitMix64 —
//! statistically fine for test-input generation and schedule fuzzing,
//! which is all this workspace asks of it.

/// Types able to construct themselves from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface. Only the pieces the workspace uses.
pub trait Rng {
    /// The next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Item
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool_uniform(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// The element type of the range.
    type Item;
    /// Draws one uniform sample.
    fn sample<G: Rng>(self, rng: &mut G) -> Self::Item;
}

/// Uniform `u64` in `[0, n)` by rejection sampling (avoids modulo
/// bias; `n` must be nonzero).
fn uniform_below<G: Rng>(rng: &mut G, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Item = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Item = $t;
            fn sample<G: Rng>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u32, u64, i32, i64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (the stand-in for rand's
    /// `StdRng`; not cryptographic, reproducible by seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0..7usize);
            assert!(v < 7);
            let w = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
        }
        // every value of a small range is eventually hit
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[(rng.gen_range(-2i64..=2) + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
