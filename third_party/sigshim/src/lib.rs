//! Minimal self-pipe signal shim (vendored — the build environment
//! has no registry access, so this stands in for `signal-hook` /
//! `ctrlc`).
//!
//! [`install`] registers a handler for a set of POSIX signals and
//! spawns one watcher thread. The handler itself does only
//! async-signal-safe work — it restores the default disposition for
//! the signal that fired (so a *second* SIGINT terminates the process
//! immediately, the conventional escape hatch from a wedged graceful
//! shutdown) and writes one byte into a pre-opened pipe. The watcher
//! thread blocks on the read end and runs the caller's callback in a
//! perfectly ordinary thread context, where it may take locks, trip a
//! `CancelToken`, log, or allocate.
//!
//! The shim deliberately uses `signal(2)` rather than `sigaction(2)`:
//! glibc's `signal` provides BSD semantics (the handler stays
//! installed, interrupted syscalls restart), and avoiding
//! `struct sigaction` keeps the FFI surface to three trivially-typed
//! libc symbols with no platform-specific struct layouts.
//!
//! Non-Unix targets get a stub [`install`] that reports
//! "unsupported"; callers degrade to running without graceful
//! shutdown.

#![warn(missing_docs)]

/// SIGHUP (terminal hangup; daemons conventionally reuse it as a
/// "reload/flush now" request). Linux numbering.
pub const SIGHUP: i32 = 1;
/// SIGINT (interactive interrupt, Ctrl-C). Linux numbering.
pub const SIGINT: i32 = 2;
/// SIGTERM (polite termination request). Linux numbering.
pub const SIGTERM: i32 = 15;
/// SIGUSR1 (user-defined; used by the shim's own tests). Linux
/// numbering.
pub const SIGUSR1: i32 = 10;

#[cfg(unix)]
mod imp {
    use std::io::Read;
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
    use std::sync::Mutex;

    /// `SIG_DFL`, the default disposition.
    const SIG_DFL: usize = 0;
    /// `SIG_ERR`, `signal(2)`'s failure return.
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
    }

    /// Write end of the self-pipe, as a raw fd the handler can reach.
    /// `-1` until [`super::install`] runs.
    static PIPE_WR: AtomicI32 = AtomicI32::new(-1);
    /// Bitmask of signal numbers whose handler stays installed across
    /// deliveries (set before the handlers are registered, read by the
    /// async-signal-safe handler — an atomic load is fine there).
    static PERSISTENT_MASK: AtomicU64 = AtomicU64::new(0);
    /// Serializes installation (one watcher thread per process).
    static INSTALLED: Mutex<bool> = Mutex::new(false);

    /// The signal handler: async-signal-safe only. For one-shot
    /// signals it restores the default disposition (second delivery
    /// kills the process); persistent signals keep the handler. Then
    /// it pokes the self-pipe with the signal number.
    extern "C" fn on_signal(sig: i32) {
        let persistent =
            (0..64).contains(&sig) && PERSISTENT_MASK.load(Ordering::SeqCst) & (1u64 << sig) != 0;
        if !persistent {
            unsafe {
                signal(sig, SIG_DFL);
            }
        }
        let fd = PIPE_WR.load(Ordering::SeqCst);
        if fd >= 0 {
            let byte = [sig as u8];
            // A full pipe or closed read end is ignorable: the
            // watcher has either already been woken or is gone.
            unsafe {
                write(fd, byte.as_ptr().cast(), 1);
            }
        }
    }

    pub fn install_mixed(
        oneshot: &[i32],
        persistent: &[i32],
        callback: impl Fn(i32) + Send + 'static,
    ) -> Result<(), String> {
        let mut installed = INSTALLED.lock().unwrap_or_else(|e| e.into_inner());
        if *installed {
            return Err("signal shim already installed in this process".into());
        }
        let mut mask = 0u64;
        for &sig in persistent {
            if !(0..64).contains(&sig) {
                return Err(format!("signal {sig} out of range for persistent install"));
            }
            mask |= 1u64 << sig;
        }
        PERSISTENT_MASK.store(mask, Ordering::SeqCst);
        let (mut reader, writer) = std::io::pipe().map_err(|e| format!("cannot open pipe: {e}"))?;
        PIPE_WR.store(writer.as_raw_fd(), Ordering::SeqCst);
        // The write end must outlive every future signal delivery.
        std::mem::forget(writer);
        for &sig in oneshot.iter().chain(persistent) {
            let handler = on_signal as extern "C" fn(i32) as *const () as usize;
            let prev = unsafe { signal(sig, handler) };
            if prev == SIG_ERR {
                return Err(format!("cannot install handler for signal {sig}"));
            }
        }
        std::thread::Builder::new()
            .name("sigshim-watcher".into())
            .spawn(move || {
                let mut byte = [0u8; 1];
                while reader.read_exact(&mut byte).is_ok() {
                    callback(i32::from(byte[0]));
                }
            })
            .map_err(|e| format!("cannot spawn watcher thread: {e}"))?;
        *installed = true;
        Ok(())
    }

    /// Sends `sig` to the current process (test helper).
    pub fn raise(sig: i32) {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        unsafe {
            raise(sig);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_mixed(
        _oneshot: &[i32],
        _persistent: &[i32],
        _callback: impl Fn(i32) + Send + 'static,
    ) -> Result<(), String> {
        Err("signal shim is only supported on Unix targets".into())
    }

    /// No-op on non-Unix targets.
    pub fn raise(_sig: i32) {}
}

/// Installs `callback` as the process-wide handler for `signals`.
///
/// The callback runs on a dedicated watcher thread (not in
/// signal-handler context), once per delivered signal, receiving the
/// signal number. After the first delivery of a given signal its
/// disposition reverts to the default, so a repeated SIGINT
/// force-kills instead of queueing another graceful shutdown.
///
/// May be called once per process; later calls return an error, as
/// does installation on non-Unix targets.
pub fn install(signals: &[i32], callback: impl Fn(i32) + Send + 'static) -> Result<(), String> {
    imp::install_mixed(signals, &[], callback)
}

/// Like [`install`], but signals in `persistent` keep their handler
/// across deliveries instead of reverting to the default disposition.
///
/// The split matches the two jobs a daemon gives its signals: `oneshot`
/// for shutdown requests (SIGINT/SIGTERM — the first delivery starts a
/// graceful drain, the second force-kills through the restored
/// default), `persistent` for repeatable control requests (SIGHUP as
/// "flush caches now" — the process must survive any number of them).
/// Same once-per-process restriction as [`install`].
pub fn install_mixed(
    oneshot: &[i32],
    persistent: &[i32],
    callback: impl Fn(i32) + Send + 'static,
) -> Result<(), String> {
    imp::install_mixed(oneshot, persistent, callback)
}

/// Sends `sig` to the current process. Exposed for tests that need to
/// exercise a real delivery without shelling out to `kill`.
pub fn raise(sig: i32) {
    imp::raise(sig)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI32, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn delivers_signal_number_to_callback_on_watcher_thread() {
        // SIGUSR1 is installed *persistent* here: a one-shot install
        // would revert to the default disposition after the first
        // delivery, and a second raise would kill the test process —
        // so surviving the second raise below is itself the assertion
        // that persistence works.
        let count = Arc::new(AtomicI32::new(0));
        let seen = Arc::new(AtomicI32::new(0));
        let (count2, seen2) = (count.clone(), seen.clone());
        install_mixed(&[], &[SIGUSR1], move |sig| {
            seen2.store(sig, Ordering::SeqCst);
            count2.fetch_add(1, Ordering::SeqCst);
        })
        .expect("first install succeeds");
        // A second install must refuse rather than double-register.
        assert!(install(&[SIGUSR1], |_| {}).is_err());

        let wait_for = |n: i32| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while count.load(Ordering::SeqCst) < n && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
        };
        raise(SIGUSR1);
        wait_for(1);
        assert_eq!(seen.load(Ordering::SeqCst), SIGUSR1, "callback never saw the signal");
        raise(SIGUSR1);
        wait_for(2);
        assert_eq!(count.load(Ordering::SeqCst), 2, "persistent handler must keep delivering");
    }
}
