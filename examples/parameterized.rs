//! Parameterized verification of finite-state threads with
//! Algorithm 6 (Appendix A): the counter abstraction `(T, k)` is
//! refined by growing `k` until either the abstraction proves safety
//! for *every* thread count, or a short (hence genuine)
//! counterexample appears.
//!
//! ```text
//! cargo run --release -p circ-bench --example parameterized
//! ```

use circ_explicit::{
    model_check, race_error, verify, FiniteThread, ModelCheck, Transition, Verdict,
};

fn main() {
    // A ticket-less spinlock: acquire by test-and-set of `lock`
    // (variable 0), write the protected cell (variable 1), release.
    let mut lock = FiniteThread::new(3, vec![2, 2]);
    lock.add(Transition::new(0, 1).guard(0, 0).update(0, 1)); // acquire
    lock.add(Transition::new(1, 2).update(1, 1)); // critical write
    lock.add(Transition::new(2, 0).update(0, 0)); // release

    println!("spinlock, unboundedly many threads:");
    let lock_err = race_error(&lock, 1);
    match verify(&lock, &lock_err, 16, 1_000_000) {
        Verdict::Safe { k, states } => {
            println!("  SAFE for every thread count (k = {k}, {states} abstract states)")
        }
        other => println!("  unexpected: {other:?}"),
    }

    // Mutual exclusion as a reachability query: can two threads ever
    // occupy the critical section (location 1)?
    match model_check(&lock, 2, &|s| s.counts[1].at_least(2), 1_000_000) {
        ModelCheck::Safe(n) => {
            println!("  mutual exclusion holds in all {n} abstract states")
        }
        other => println!("  unexpected: {other:?}"),
    }

    // Break the lock: acquire without testing. Algorithm 6 grows k
    // until the 2-step counterexample is certified genuine.
    let mut broken = FiniteThread::new(3, vec![2, 2]);
    broken.add(Transition::new(0, 1).update(0, 1));
    broken.add(Transition::new(1, 2).update(1, 1));
    broken.add(Transition::new(2, 0).update(0, 0));
    println!("\nbroken spinlock (acquire without test):");
    let broken_err = race_error(&broken, 1);
    match verify(&broken, &broken_err, 16, 1_000_000) {
        Verdict::Unsafe { k, trace } => {
            println!("  UNSAFE at k = {k}; counterexample ({} steps):", trace.len() - 1);
            for s in &trace {
                println!("    {s}");
            }
        }
        other => println!("  unexpected: {other:?}"),
    }
}
