//! Watch CIRC infer a context model: the full assume–guarantee /
//! refinement narrative on the paper's Figure 1 example, printed
//! round by round.
//!
//! ```text
//! cargo run --release -p circ-bench --example prove_race_freedom
//! ```

use circ_core::{circ, CircConfig, CircEvent, CircOutcome};
use circ_ir::{figure1_cfa, MtProgram};

fn main() {
    let cfa = figure1_cfa();
    let x = cfa.var_by_name("x").unwrap();
    println!("Goal: prove that unboundedly many copies of the test-and-set");
    println!("thread never race on `x`.\n");

    let program = MtProgram::new(cfa, x);
    let outcome = circ(&program, &CircConfig::default());

    for event in &outcome.log().events {
        match event {
            CircEvent::OuterStart { preds, k } => {
                if preds.is_empty() {
                    println!("▶ start: no predicates, counter parameter k = {k}");
                } else {
                    println!("▶ restart with P = {{{}}}, k = {k}", preds.join(", "));
                }
            }
            CircEvent::ReachDone { arg_locs, .. } => {
                println!("   assume: reachability clean; ARG has {arg_locs} locations");
            }
            CircEvent::SimChecked { holds: true } => {
                println!("   guarantee: the context ACFA simulates the ARG ✓");
            }
            CircEvent::SimChecked { holds: false } => {
                println!("   guarantee fails: the context was too strong — weaken it");
            }
            CircEvent::Collapsed { size, .. } => {
                println!("   collapse: minimized the ARG into a {size}-location context");
            }
            CircEvent::AbstractRace { trace_len } => {
                println!("   abstract race reached after {trace_len} abstract steps");
            }
            CircEvent::Refined { verdict, detail } => {
                println!("   refine: {verdict}");
                if !detail.mined_preds.is_empty() {
                    println!(
                        "           mined from the infeasibility proof: {}",
                        detail
                            .mined_preds
                            .iter()
                            .map(|p| format!("{p}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
            CircEvent::OmegaCheck { good } => {
                println!("   ω-goodness check: {good}");
            }
        }
    }

    match outcome {
        CircOutcome::Safe(report) => {
            println!("\n■ SAFE (Theorem 1): races on `x` are impossible for any thread count.");
            println!("  final context model:\n");
            let cfa = figure1_cfa();
            let preds = report.preds.clone();
            let named = |s: String| {
                let mut s = s;
                for (ix, vi) in cfa.vars().iter().enumerate() {
                    s = s.replace(&format!("v{ix}"), &vi.name);
                }
                s
            };
            println!(
                "{}",
                report.acfa.display_with(&|i| named(format!("{}", preds[i.index()])), &|v| cfa
                    .var_name(v)
                    .to_string())
            );
        }
        other => println!("\nunexpected outcome: {other:?}"),
    }
}
