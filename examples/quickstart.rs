//! Quickstart: write a tiny concurrent program in NesL, compile it,
//! and ask CIRC whether arbitrarily many threads can race on a
//! shared variable.
//!
//! ```text
//! cargo run --release -p circ-bench --example quickstart
//! ```

use circ_core::{circ, CircConfig, CircOutcome};
use circ_ir::MtProgram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A thread that guards `counter` with a test-and-set flag instead
    // of a lock. Lockset-based tools flag this; it is race-free.
    let source = r#"
        global int counter;
        global int busy;
        #race counter;

        thread worker {
          local int mine;
          loop {
            atomic {
              mine = busy;
              if (busy == 0) { busy = 1; }
            }
            if (mine == 0) {
              counter = counter + 1;   // protected by the flag
              busy = 0;
            }
          }
        }
    "#;

    // 1. Compile NesL to a control flow automaton.
    let compiled = circ_frontend::compile(source)?;
    let race_var = compiled.race_vars[0];
    println!(
        "compiled thread `{}`: {} locations, {} edges",
        compiled.cfa.name(),
        compiled.cfa.num_locs(),
        compiled.cfa.edges().len()
    );

    // 2. Check the symmetric unbounded-thread program for races.
    let program = MtProgram::new(compiled.cfa.clone(), race_var);
    let outcome = circ(&program, &CircConfig::omega());

    // 3. Read the verdict.
    match outcome {
        CircOutcome::Safe(report) => {
            println!("\nSAFE: no data race on `counter`, for ANY number of threads.");
            println!("  discovered predicates: {}", report.preds.len());
            println!("  inferred context model: {} abstract locations", report.acfa.num_locs());
            println!("  counter parameter k = {}", report.k);
            println!("  {} reachability runs, {:?}", report.stats.reach_runs, report.stats.elapsed);
        }
        CircOutcome::Unsafe(report) => {
            println!("\nRACE on `counter`! {}-thread schedule:", report.cex.n_threads);
            for (tid, eid, _) in &report.cex.steps {
                println!("  T{tid}: {}", compiled.cfa.edge(*eid).op);
            }
        }
        CircOutcome::Unknown(report) => {
            println!("\ninconclusive: {:?}", report.reason);
        }
    }
    Ok(())
}
