//! Find a real data race and replay its schedule step by step on the
//! concrete interpreter — the `Unsafe` side of CIRC (the interleaved
//! error traces of §5).
//!
//! ```text
//! cargo run --release -p circ-bench --example find_a_race
//! ```

use circ_core::{circ, CircConfig, CircOutcome};
use circ_ir::{Interp, SchedChoice, ThreadId};

fn main() {
    // The paper's Figure 1 idiom with the atomic block removed: the
    // classic "both threads read the flag before either sets it" bug.
    let model = circ_nesc::model("test_and_set_buggy").expect("model exists");
    let program = model.program();
    let cfa = program.cfa();

    let outcome = circ(&program, &CircConfig::omega());
    let CircOutcome::Unsafe(report) = outcome else {
        println!("expected a race, got {outcome:?}");
        std::process::exit(1);
    };

    println!(
        "RACE found on `{}` — {} threads, {} steps (replay validated: {}):\n",
        cfa.var_name(program.race_var()),
        report.cex.n_threads,
        report.cex.steps.len(),
        report.cex.replay_ok,
    );

    // Replay the schedule, narrating every step.
    let interp = Interp::new(program.clone(), report.cex.n_threads);
    let mut state = interp.initial();
    for (i, &(tid, eid, nondet)) in report.cex.steps.iter().enumerate() {
        let edge = cfa.edge(eid);
        let mut op = format!("{}", edge.op);
        for (ix, vi) in cfa.vars().iter().enumerate() {
            op = op.replace(&format!("v{ix}"), &vi.name);
        }
        println!("  {i:>2}. T{tid}  {op}");
        state =
            interp.step(&state, SchedChoice { thread: ThreadId(tid as u32), edge: eid, nondet });
    }

    let witness = interp.race(&state).expect("schedule ends in a race state");
    println!(
        "\nfinal state: {} and {} both have enabled accesses to `{}` \
         (at least one a write) with no atomic section active.",
        witness.writer,
        witness.other,
        cfa.var_name(witness.var)
    );
    println!("The fix — restoring the atomic block — is the `test_and_set` model,");
    println!("which CIRC proves race-free.");
}
