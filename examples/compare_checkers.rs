//! Why path-sensitive verification matters: run the flow-based and
//! lockset baselines next to CIRC on one state-variable idiom and see
//! the false positives the paper's introduction describes.
//!
//! ```text
//! cargo run --release -p circ-bench --example compare_checkers
//! ```

use circ_baselines::{eraser, flow_check};
use circ_core::{circ, CircConfig, CircOutcome};

fn main() {
    let model = circ_nesc::model("split_phase").expect("model exists");
    println!("Program: the split-phase interrupt idiom (surge's rec_ptr):\n");
    println!("{}\n", model.source.trim());

    let program = model.program();
    let x = program.race_var();
    let name = program.cfa().var_name(x).to_string();

    // 1. Flow-based static analysis (nesC compiler style).
    let flow = flow_check(program.cfa());
    println!(
        "flow-based checker:  {} (`{name}` is written outside atomic sections)",
        if flow.flags(x) { "POTENTIAL RACE — false positive" } else { "clean" }
    );

    // 2. Dynamic lockset analysis (Eraser style) over random runs.
    let dynamic = eraser(&program, 3, 500, 10, 2024);
    println!(
        "lockset checker:     {} ({} accesses monitored across {} runs)",
        if dynamic.flags(x) { "POTENTIAL RACE — false positive" } else { "clean" },
        dynamic.accesses,
        dynamic.runs
    );

    // 3. CIRC.
    match circ(&program, &CircConfig::omega()) {
        CircOutcome::Safe(r) => println!(
            "CIRC:                SAFE, proved for every thread count \
             ({} predicates, {}-location context, {:?})",
            r.preds.len(),
            r.acfa.num_locs(),
            r.stats.elapsed
        ),
        other => println!("CIRC:                unexpected {other:?}"),
    }

    println!(
        "\nThe interrupt-enable bit and the pending-task flag form a token that\n\
         only one thread can hold; neither baseline can follow the token, so\n\
         both must warn. CIRC infers a context model whose location labels\n\
         carry exactly that invariant."
    );
}
